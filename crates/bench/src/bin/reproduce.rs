//! Regenerates every experiment in DESIGN.md §4 (E1–E8, F2) plus the engine
//! serving experiment (E9), the skew-aware routing experiment (E10), the
//! persistence-overhead experiment (E11), the global-sliding-window
//! experiment (E12), the ingest-hot-path experiment (E13), the
//! observability-overhead experiment (E14), the serving-front-end
//! experiment (E15), and the multi-producer ingest-scaling experiment
//! (E16), and prints the result tables recorded in EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! cargo run --release -p psfa-bench --bin reproduce            # all experiments
//! cargo run --release -p psfa-bench --bin reproduce -- --exp e4
//! cargo run --release -p psfa-bench --bin reproduce -- --quick # small batch counts
//! cargo run --release -p psfa-bench --bin reproduce -- --bench-json BENCH.json
//! ```
//!
//! `--quick` divides every experiment's batch count by 8 (minimum 3) so a
//! full sweep finishes in seconds — for CI smoke runs and local iteration;
//! recorded numbers should come from a full run. `--bench-json <path>`
//! additionally writes the measurements as machine-readable records — one
//! `{experiment, config, items_per_sec}` object per throughput measurement,
//! one `{experiment, config, metric, p50_ns, …, p999_ns}` object per
//! latency distribution, one `{experiment, config, metric, requests,
//! busy, p50_ns, p99_ns, p999_ns}` object per open-loop request-latency
//! distribution, and one `{experiment, config, faults_*, queries_*,
//! unavail_*_ns}` object per fault-injection availability run (the
//! committed `BENCH_<pr>.json` trajectory).

use std::collections::HashMap;

use psfa::prelude::*;
use psfa_bench::hotpath::{drive_shards, pre_split, HotPathParams, HotShardLoop, LegacyShardLoop};
use psfa_bench::{
    alloc_counter, bench_json, binary_minibatches, exact_window_counts, header, row, threads,
    timed, zipf_minibatches,
};

/// Counting-allocator shim: E13's allocation audit asserts the recycled
/// ingest path performs zero steady-state allocations, which requires the
/// global allocator to count (two relaxed atomic adds per allocation —
/// noise-floor overhead for every other experiment).
#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

/// Number of batches to drive: the experiment's full count, or a small
/// count under `--quick`.
fn scaled(full: usize, quick: bool) -> usize {
    if quick {
        (full / 8).max(3)
    } else {
        full
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let selected = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    let want = |name: &str| selected.as_deref().is_none_or(|s| s == name);
    let quick = args.iter().any(|a| a == "--quick");
    let bench_json_path = args
        .iter()
        .position(|a| a == "--bench-json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    println!(
        "PSFA experiment reproduction (rayon threads = {}{})\n",
        threads(),
        if quick { ", --quick" } else { "" }
    );
    if want("e1") {
        e1_sbbc(quick);
    }
    if want("e2") {
        e2_basic_counting(quick);
    }
    if want("e3") {
        e3_sum(quick);
    }
    if want("e4") {
        e4_infinite_window(quick);
    }
    if want("e5") {
        e5_sliding_variants(quick);
    }
    if want("e6") {
        e6_count_min(quick);
    }
    if want("e7") {
        e7_independent_vs_shared(quick);
    }
    if want("e8") {
        e8_work_optimality(quick);
    }
    if want("e9") {
        e9_engine(quick);
    }
    if want("e10") {
        e10_skew_routing(quick);
    }
    if want("e11") {
        e11_persistence(quick);
    }
    if want("e12") {
        e12_global_window(quick);
    }
    if want("e13") {
        e13_hot_path(quick);
    }
    if want("e14") {
        e14_observability(quick);
    }
    if want("e15") {
        e15_serving(quick);
    }
    if want("e16") {
        e16_multi_producer(quick);
    }
    if want("e17") {
        e17_fault_tolerance(quick);
    }
    if want("f2") {
        f2_snapshot_example();
    }
    if let Some(path) = bench_json_path {
        let written = bench_json::write_to(&path)
            .unwrap_or_else(|e| panic!("failed to write bench json to {path}: {e}"));
        println!("wrote {written} bench records to {path}");
    }
}

/// E1 — SBBC value bounds and space (Theorem 3.4, Lemma 3.2).
fn e1_sbbc(quick: bool) {
    println!(
        "== E1: space-bounded block counter — additive error ≤ λ, space ≤ min{{2σ+2, 2m/λ+2}} =="
    );
    println!(
        "{}",
        header(&[
            "lambda",
            "density",
            "max add err",
            "bound λ",
            "blocks",
            "2m/λ+2"
        ])
    );
    let n = 50_000u64;
    for &lambda in &[8u64, 32, 128] {
        for &density in &[0.05f64, 0.5] {
            let batches = binary_minibatches(density, scaled(40, quick), 5_000, lambda ^ 7);
            let mut sbbc = Sbbc::unbounded(lambda, n);
            let mut history: Vec<bool> = Vec::new();
            let mut max_err = 0i64;
            for bits in &batches {
                sbbc.advance(&CompactedSegment::from_bits(bits));
                history.extend_from_slice(bits);
                let start = history.len().saturating_sub(n as usize);
                let m = history[start..].iter().filter(|&&b| b).count() as i64;
                let est = sbbc.value().expect("unbounded counter") as i64;
                max_err = max_err.max(est - m);
                assert!(est >= m, "SBBC must never undercount");
            }
            let start = history.len().saturating_sub(n as usize);
            let m = history[start..].iter().filter(|&&b| b).count() as u64;
            println!(
                "{}",
                row(&[
                    lambda.to_string(),
                    format!("{density:.2}"),
                    max_err.to_string(),
                    lambda.to_string(),
                    sbbc.space_blocks().to_string(),
                    (2 * m / lambda + 2).to_string(),
                ])
            );
        }
    }
    println!();
}

/// E2 — basic counting vs the DGIM sequential baseline (Theorem 4.1).
fn e2_basic_counting(quick: bool) {
    println!(
        "== E2: basic counting over a sliding window — ε relative error, O(ε⁻¹ log n) space =="
    );
    println!(
        "{}",
        header(&["eps", "n", "algo", "Mitems/s", "max rel err", "space"])
    );
    let n = 1u64 << 18;
    for &eps in &[0.1f64, 0.01] {
        let batches = binary_minibatches(0.3, scaled(60, quick), 8_192, 42);
        let total_items: usize = batches.iter().map(Vec::len).sum();

        let mut counter = BasicCounter::new(eps, n);
        let mut history: Vec<bool> = Vec::new();
        let mut max_rel = 0.0f64;
        let (_, secs) = timed(|| {
            for bits in &batches {
                counter.advance_bits(bits);
            }
        });
        for bits in &batches {
            history.extend_from_slice(bits);
        }
        let start = history.len().saturating_sub(n as usize);
        let m = history[start..].iter().filter(|&&b| b).count() as f64;
        max_rel = max_rel.max((counter.estimate() as f64 - m) / m.max(1.0));
        println!(
            "{}",
            row(&[
                format!("{eps}"),
                n.to_string(),
                "parallel-sbbc".into(),
                format!("{:.2}", total_items as f64 / secs / 1e6),
                format!("{max_rel:.4}"),
                format!("{} blocks", counter.space_blocks()),
            ])
        );

        let mut dgim = DgimCounter::new(eps, n);
        let (_, secs) = timed(|| {
            for bits in &batches {
                dgim.update_all(bits);
            }
        });
        let rel = (dgim.estimate() as f64 - m).abs() / m.max(1.0);
        println!(
            "{}",
            row(&[
                format!("{eps}"),
                n.to_string(),
                "dgim-seq".into(),
                format!("{:.2}", total_items as f64 / secs / 1e6),
                format!("{rel:.4}"),
                format!("{} buckets", dgim.num_buckets()),
            ])
        );
    }
    println!();
}

/// E3 — windowed sum of bounded integers (Theorem 4.2).
fn e3_sum(quick: bool) {
    println!("== E3: sliding-window sum of integers in [0, R] — ε relative error ==");
    println!(
        "{}",
        header(&["eps", "R", "Mitems/s", "rel err", "space (blocks)"])
    );
    let n = 1u64 << 16;
    for &(eps, max_value) in &[(0.05f64, 255u64), (0.05, 65_535), (0.01, 65_535)] {
        let mut generator = BinaryStreamGenerator::new(0.6, 9);
        let batches: Vec<Vec<u64>> = (0..scaled(40, quick))
            .map(|_| generator.next_values(4096, max_value))
            .collect();
        let total_items: usize = batches.iter().map(Vec::len).sum();
        let mut sum = WindowedSum::new(eps, n, max_value);
        let (_, secs) = timed(|| {
            for values in &batches {
                sum.advance(values);
            }
        });
        let history: Vec<u64> = batches.concat();
        let start = history.len().saturating_sub(n as usize);
        let truth: u64 = history[start..].iter().sum();
        let rel = (sum.estimate() as f64 - truth as f64) / truth.max(1) as f64;
        println!(
            "{}",
            row(&[
                format!("{eps}"),
                max_value.to_string(),
                format!("{:.2}", total_items as f64 / secs / 1e6),
                format!("{rel:.4}"),
                sum.space_blocks().to_string(),
            ])
        );
    }
    println!();
}

/// E4 — infinite-window frequency estimation / heavy hitters (Theorem 5.2).
fn e4_infinite_window(quick: bool) {
    println!(
        "== E4: infinite-window frequency estimation — parallel MG vs sequential baselines =="
    );
    println!(
        "{}",
        header(&[
            "eps",
            "workload",
            "algo",
            "Mitems/s",
            "max err/εm",
            "counters"
        ])
    );
    for &eps in &[0.01f64, 0.001] {
        for &(alpha, label) in &[(1.2f64, "zipf1.2"), (0.0, "uniform")] {
            let batches = zipf_minibatches(200_000, alpha, scaled(40, quick), 20_000, 7);
            let total_items: usize = batches.iter().map(Vec::len).sum();
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for b in &batches {
                for &x in b {
                    *truth.entry(x).or_insert(0) += 1;
                }
            }
            let m = total_items as f64;

            // Parallel shared-summary estimator (this paper).
            let mut parallel = ParallelFrequencyEstimator::new(eps);
            let (_, par_secs) = timed(|| {
                for b in &batches {
                    parallel.process_minibatch(b);
                }
            });
            let max_err = truth
                .iter()
                .map(|(&item, &f)| f.saturating_sub(parallel.estimate(item)) as f64)
                .fold(0.0f64, f64::max);
            println!(
                "{}",
                row(&[
                    format!("{eps}"),
                    label.into(),
                    "parallel-mg".into(),
                    format!("{:.2}", m / par_secs / 1e6),
                    format!("{:.3}", max_err / (eps * m)),
                    parallel.num_counters().to_string(),
                ])
            );

            // Sequential Misra–Gries (the best sequential counterpart).
            let mut seq = SequentialMisraGries::new(eps);
            let (_, seq_secs) = timed(|| {
                for b in &batches {
                    seq.update_all(b);
                }
            });
            let max_err = truth
                .iter()
                .map(|(&item, &f)| f.saturating_sub(seq.estimate(item)) as f64)
                .fold(0.0f64, f64::max);
            println!(
                "{}",
                row(&[
                    format!("{eps}"),
                    label.into(),
                    "seq-mg".into(),
                    format!("{:.2}", m / seq_secs / 1e6),
                    format!("{:.3}", max_err / (eps * m)),
                    seq.num_counters().to_string(),
                ])
            );

            // Space-Saving, the other classic counter-based baseline.
            let mut ss = SpaceSaving::new(eps);
            let (_, ss_secs) = timed(|| {
                for b in &batches {
                    ss.update_all(b);
                }
            });
            println!(
                "{}",
                row(&[
                    format!("{eps}"),
                    label.into(),
                    "space-saving".into(),
                    format!("{:.2}", m / ss_secs / 1e6),
                    "n/a (overest)".into(),
                    ss.entries().len().to_string(),
                ])
            );
        }
    }
    println!();
}

/// E5 — the three sliding-window variants (Theorems 5.5, 5.8, 5.4).
fn e5_sliding_variants(quick: bool) {
    println!("== E5: sliding-window frequency estimation — basic vs space-efficient vs work-efficient ==");
    println!(
        "{}",
        header(&["eps", "n", "algo", "Mitems/s", "max err/εn", "counters"])
    );
    let eps = 0.01f64;
    let n = 1u64 << 18;
    let batches = zipf_minibatches(100_000, 1.1, scaled(40, quick), 10_000, 23);
    let history: Vec<u64> = batches.concat();
    let truth = exact_window_counts(&history, n);
    let total_items = history.len() as f64;

    fn run<E: SlidingFrequencyEstimator>(
        mut est: E,
        name: &str,
        batches: &[Vec<u64>],
        truth: &HashMap<u64, u64>,
        eps: f64,
        n: u64,
        total_items: f64,
    ) -> String {
        let (_, secs) = timed(|| {
            for b in batches {
                est.process_minibatch(b);
            }
        });
        let max_err = truth
            .iter()
            .map(|(&item, &f)| f.saturating_sub(est.estimate(item)) as f64)
            .fold(0.0f64, f64::max);
        row(&[
            format!("{eps}"),
            n.to_string(),
            name.into(),
            format!("{:.2}", total_items / secs / 1e6),
            format!("{:.3}", max_err / (eps * n as f64)),
            est.num_counters().to_string(),
        ])
    }

    println!(
        "{}",
        run(
            SlidingFreqBasic::new(eps, n),
            "basic (Thm 5.5)",
            &batches,
            &truth,
            eps,
            n,
            total_items
        )
    );
    println!(
        "{}",
        run(
            SlidingFreqSpaceEfficient::new(eps, n),
            "space-eff (Thm 5.8)",
            &batches,
            &truth,
            eps,
            n,
            total_items
        )
    );
    println!(
        "{}",
        run(
            SlidingFreqWorkEfficient::new(eps, n),
            "work-eff (Thm 5.4)",
            &batches,
            &truth,
            eps,
            n,
            total_items
        )
    );
    // Exact baseline for context.
    let mut exact = ExactSlidingWindow::new(n);
    let (_, secs) = timed(|| {
        for b in &batches {
            exact.process_minibatch(b);
        }
    });
    println!(
        "{}",
        row(&[
            format!("{eps}"),
            n.to_string(),
            "exact (Θ(n) mem)".into(),
            format!("{:.2}", total_items / secs / 1e6),
            "0.000".into(),
            exact.num_distinct().to_string(),
        ])
    );
    println!();
}

/// E6 — parallel Count-Min minibatch ingestion (Theorem 6.1).
fn e6_count_min(quick: bool) {
    println!("== E6: count-min sketch — parallel minibatch ingestion vs per-element updates ==");
    println!(
        "{}",
        header(&[
            "eps",
            "delta",
            "algo",
            "Mitems/s",
            "err>εm items",
            "counters"
        ])
    );
    for &(eps, delta) in &[(1e-3f64, 0.01f64), (1e-4, 0.004)] {
        let batches = zipf_minibatches(500_000, 1.05, scaled(30, quick), 20_000, 13);
        let total: usize = batches.iter().map(Vec::len).sum();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for b in &batches {
            for &x in b {
                *truth.entry(x).or_insert(0) += 1;
            }
        }
        let m = total as f64;

        let mut par = ParallelCountMin::new(eps, delta, 3);
        let (_, par_secs) = timed(|| {
            for b in &batches {
                par.process_minibatch(b);
            }
        });
        let violations = truth
            .iter()
            .filter(|(&item, &f)| par.query(item) as f64 > f as f64 + eps * m)
            .count();
        println!(
            "{}",
            row(&[
                format!("{eps}"),
                format!("{delta}"),
                "parallel-cm".into(),
                format!("{:.2}", m / par_secs / 1e6),
                format!("{violations}/{}", truth.len()),
                par.sketch().num_counters().to_string(),
            ])
        );

        let mut seq = CountMinSketch::new(eps, delta, 3);
        let (_, seq_secs) = timed(|| {
            for b in &batches {
                for &x in b {
                    seq.update(x, 1);
                }
            }
        });
        let violations = truth
            .iter()
            .filter(|(&item, &f)| seq.query(item) as f64 > f as f64 + eps * m)
            .count();
        println!(
            "{}",
            row(&[
                format!("{eps}"),
                format!("{delta}"),
                "seq-cm".into(),
                format!("{:.2}", m / seq_secs / 1e6),
                format!("{violations}/{}", truth.len()),
                seq.num_counters().to_string(),
            ])
        );
    }
    println!();
}

/// E7 — shared structure vs independent per-worker structures (Section 5.4).
fn e7_independent_vs_shared(quick: bool) {
    println!("== E7: shared summary vs independent per-worker summaries (mergeable, §5.4) ==");
    println!(
        "{}",
        header(&[
            "eps",
            "p",
            "algo",
            "total counters",
            "query time µs",
            "max err/εm"
        ])
    );
    let eps = 0.001f64;
    let batches = zipf_minibatches(300_000, 1.1, scaled(30, quick), 20_000, 31);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for b in &batches {
        for &x in b {
            *truth.entry(x).or_insert(0) += 1;
        }
    }
    let m: u64 = truth.values().sum();

    let mut shared = ParallelFrequencyEstimator::new(eps);
    for b in &batches {
        shared.process_minibatch(b);
    }
    let (_, q_secs) = timed(|| {
        let _ = shared.heavy_hitters(0.01);
    });
    let max_err = truth
        .iter()
        .map(|(&item, &f)| f.saturating_sub(shared.estimate(item)) as f64)
        .fold(0.0f64, f64::max);
    println!(
        "{}",
        row(&[
            format!("{eps}"),
            "-".into(),
            "shared (this paper)".into(),
            shared.num_counters().to_string(),
            format!("{:.1}", q_secs * 1e6),
            format!("{:.3}", max_err / (eps * m as f64)),
        ])
    );

    for &p in &[2usize, 4, 8, 16] {
        let mut independent = IndependentMgSummaries::new(eps, p);
        for b in &batches {
            independent.process_minibatch(b);
        }
        let (merged, merge_secs) = timed(|| independent.merged());
        let max_err = truth
            .iter()
            .map(|(&item, &f)| f.saturating_sub(merged.get(&item).copied().unwrap_or(0)) as f64)
            .fold(0.0f64, f64::max);
        println!(
            "{}",
            row(&[
                format!("{eps}"),
                p.to_string(),
                "independent+merge".into(),
                independent.total_counters().to_string(),
                format!("{:.1}", merge_secs * 1e6),
                format!("{:.3}", max_err / (eps * m as f64)),
            ])
        );
    }
    println!();
}

/// E8 — work optimality (Corollary 5.11): per-item work flattens once µ ≳ 1/ε.
fn e8_work_optimality(quick: bool) {
    println!("== E8: work per item vs minibatch size (work meter, ε = 0.001 ⇒ 1/ε = 1000) ==");
    println!(
        "{}",
        header(&["minibatch µ", "µ·ε", "work/item", "ns/item"])
    );
    let eps = 0.001f64;
    let total_items = if quick { 100_000usize } else { 400_000usize };
    for &mu in &[100usize, 300, 1_000, 3_000, 10_000, 30_000, 100_000] {
        let batches = zipf_minibatches(100_000, 1.1, (total_items / mu).max(1), mu, 17);
        let meter = WorkMeter::new();
        let mut est = ParallelFrequencyEstimator::new(eps).with_meter(meter.clone());
        let (_, secs) = timed(|| {
            for b in &batches {
                est.process_minibatch(b);
            }
        });
        let items: usize = batches.iter().map(Vec::len).sum();
        println!(
            "{}",
            row(&[
                mu.to_string(),
                format!("{:.1}", mu as f64 * eps),
                format!("{:.2}", meter.total() as f64 / items as f64),
                format!("{:.1}", secs * 1e9 / items as f64),
            ])
        );
    }
    println!();
}

/// E9 — the sharded ingestion engine vs the single-threaded pipeline on one
/// Zipf workload: ingestion throughput and (identical) answer quality.
fn e9_engine(quick: bool) {
    println!("== E9: sharded engine vs single-threaded pipeline — same stream, same (φ, ε) ==");
    println!(
        "{}",
        header(&["config", "Mitems/s", "heavy hitters", "max err/εm"])
    );
    let phi = 0.01;
    let eps = 0.001;
    let batches = zipf_minibatches(200_000, 1.1, scaled(48, quick), 20_000, 29);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for b in &batches {
        for &x in b {
            *truth.entry(x).or_insert(0) += 1;
        }
    }
    let m: u64 = truth.values().sum();

    let report_row = |label: String, secs: f64, hh: usize, max_err: f64| {
        row(&[
            label,
            format!("{:.2}", m as f64 / secs / 1e6),
            hh.to_string(),
            format!("{:.3}", max_err / (eps * m as f64)),
        ])
    };

    // Single-threaded reference.
    let mut single = InfiniteHeavyHitters::new(phi, eps);
    let (_, secs) = timed(|| {
        for b in &batches {
            single.process_minibatch(b);
        }
    });
    let max_err = truth
        .iter()
        .map(|(&item, &f)| f.saturating_sub(single.estimator().estimate(item)) as f64)
        .fold(0.0f64, f64::max);
    bench_json::record("E9", "single-thread", m as f64 / secs);
    println!(
        "{}",
        report_row("single-thread".into(), secs, single.query().len(), max_err)
    );

    // The engine at increasing shard counts; ingestion from this thread,
    // workers on their own cores, drain() included in the timing.
    for &shards in &[2usize, 4, 8] {
        let engine = Engine::spawn(EngineConfig::with_shards(shards).heavy_hitters(phi, eps));
        let handle = engine.handle();
        let (_, secs) = timed(|| {
            for b in &batches {
                handle.ingest(b).expect("engine closed");
            }
            engine.drain().unwrap();
        });
        let max_err = truth
            .iter()
            .map(|(&item, &f)| f.saturating_sub(handle.estimate(item)) as f64)
            .fold(0.0f64, f64::max);
        let hh = handle.heavy_hitters().len();
        engine.shutdown().unwrap();
        bench_json::record("E9", &format!("engine x{shards}"), m as f64 / secs);
        println!(
            "{}",
            report_row(format!("engine x{shards}"), secs, hh, max_err)
        );
    }
    println!();
}

/// E10 — routing policies under skew: hash partitioning vs skew-aware
/// hot-key splitting on Zipf streams. Hash routing pins each hot key to one
/// shard, so the busiest shard — not the hardware — bounds throughput; the
/// skew-aware router spreads hot keys round-robin and queries sum their
/// per-shard counts. Asserts the one-sided `ε·m` accuracy bound under both
/// policies and, on the heavily skewed stream, that splitting levels the
/// load — so a routing regression fails this experiment, not just a bench.
fn e10_skew_routing(quick: bool) {
    println!("== E10: routing under skew — hash vs skew-aware hot-key splitting (8 shards) ==");
    println!(
        "{}",
        header(&[
            "alpha",
            "router",
            "Mitems/s",
            "imbalance",
            "hot keys",
            "max err/εm"
        ])
    );
    let shards = 8usize;
    let phi = 0.01;
    let eps = 0.001;
    for &alpha in &[1.1f64, 1.5] {
        let batches = zipf_minibatches(100_000, alpha, scaled(48, quick), 20_000, 37);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for b in &batches {
            for &x in b {
                *truth.entry(x).or_insert(0) += 1;
            }
        }
        let m: u64 = truth.values().sum();

        let mut imbalances = Vec::new();
        for policy in [RoutingPolicy::Hash, RoutingPolicy::skew_aware()] {
            let engine = Engine::spawn(
                EngineConfig::with_shards(shards)
                    .heavy_hitters(phi, eps)
                    .routing(policy.clone()),
            );
            let handle = engine.handle();
            let (_, secs) = timed(|| {
                for b in &batches {
                    handle.ingest(b).expect("engine closed");
                }
                engine.drain().unwrap();
            });
            let metrics = handle.metrics();
            let imbalance = metrics.load_imbalance().expect("items were processed");
            let max_err = truth
                .iter()
                .map(|(&item, &f)| {
                    let est = handle.estimate(item);
                    assert!(
                        est <= f,
                        "{}: estimate {est} above truth {f}",
                        policy.name()
                    );
                    f.saturating_sub(est) as f64
                })
                .fold(0.0f64, f64::max);
            assert!(
                max_err <= eps * m as f64 + 1.0,
                "{}: error {max_err} above εm = {}",
                policy.name(),
                eps * m as f64
            );
            engine.shutdown().unwrap();
            imbalances.push(imbalance);
            println!(
                "{}",
                row(&[
                    format!("{alpha}"),
                    policy.name().into(),
                    format!("{:.2}", m as f64 / secs / 1e6),
                    format!("{imbalance:.3}"),
                    metrics.hot_keys.len().to_string(),
                    format!("{:.3}", max_err / (eps * m as f64)),
                ])
            );
        }
        // On the heavily skewed stream the win must be visible, not just
        // plausible: Zipf(1.5)'s head key alone is ~38% of all traffic.
        if alpha >= 1.5 {
            assert!(
                imbalances[1] < imbalances[0],
                "skew-aware imbalance {:.3} must beat hash imbalance {:.3} at Zipf({alpha})",
                imbalances[1],
                imbalances[0]
            );
        }
    }
    println!();
}

/// E11 — persistence overhead: ingest throughput with the background
/// flusher cutting epoch snapshots at varying intervals, against the same
/// engine with persistence off. Snapshots are cut off the hot path (state
/// clones on the workers, encoding + fsync on the flusher thread), so the
/// overhead must stay small; the experiment *asserts* that the best
/// flushing configuration ingests within 10% of the no-persistence
/// baseline, so a persistence regression fails CI rather than just shifting
/// a table. Also verifies that every flushing run actually persisted
/// epochs and that a recovery from the written store answers queries.
fn e11_persistence(quick: bool) {
    println!(
        "== E11: persistence overhead — background snapshots (interval × shards) vs no persistence =="
    );
    println!(
        "{}",
        header(&[
            "shards",
            "interval",
            "Mitems/s",
            "overhead %",
            "epochs",
            "KiB on disk"
        ])
    );
    let phi = 0.01;
    let eps = 0.001;
    let tmpdir = |label: String| psfa::store::testutil::unique_temp_dir(&format!("e11-{label}"));
    for &shards in &[2usize, 4] {
        let batches = zipf_minibatches(100_000, 1.2, scaled(48, quick), 20_000, 43);
        let m: u64 = batches.iter().map(|b| b.len() as u64).sum();

        // One timed run: ingest + drain (the serving path), shutdown
        // untimed. Returns items/s and the post-shutdown store metrics.
        let run =
            |interval: Option<u64>| -> (f64, Option<StoreMetrics>, Option<std::path::PathBuf>) {
                let mut config = EngineConfig::with_shards(shards).heavy_hitters(phi, eps);
                let dir = interval.map(|i| {
                    let dir = tmpdir(format!("s{shards}-i{i}"));
                    config = config.clone().persistence(
                        PersistenceConfig::new(&dir)
                            .interval_batches(i)
                            .poll(std::time::Duration::from_millis(1)),
                    );
                    dir
                });
                let engine = Engine::spawn(config.clone());
                let handle = engine.handle();
                let (_, secs) = timed(|| {
                    for b in &batches {
                        handle.ingest(b).expect("engine closed");
                    }
                    engine.drain().unwrap();
                });
                engine.shutdown().unwrap(); // final snapshot (untimed)
                let store = handle.metrics().store;
                (m as f64 / secs, store, dir)
            };
        // Best of two runs per configuration damps scheduler noise.
        let best = |interval: Option<u64>| {
            let (a, store_a, dir_a) = run(interval);
            if let Some(dir) = dir_a {
                let _ = std::fs::remove_dir_all(dir);
            }
            let (b, store_b, dir_b) = run(interval);
            (a.max(b), store_b.or(store_a), dir_b)
        };

        let (baseline, _, _) = best(None);
        println!(
            "{}",
            row(&[
                shards.to_string(),
                "off".into(),
                format!("{:.2}", baseline / 1e6),
                "0.0".into(),
                "-".into(),
                "-".into(),
            ])
        );

        let mut best_persisted = 0.0f64;
        for &interval in &[4u64, 16] {
            let (tput, store, dir) = best(Some(interval));
            let store = store.expect("persistence was configured");
            assert!(
                store.epochs_persisted > 0,
                "E11: flushing run persisted no epochs (interval {interval})"
            );
            // The written store must actually recover.
            if let Some(dir) = &dir {
                let recovered = Engine::recover(
                    dir,
                    EngineConfig::with_shards(shards).heavy_hitters(phi, eps),
                )
                .expect("E11: recovery from the written store");
                let h = recovered.handle();
                assert_eq!(h.total_items(), m, "recovered engine covers the stream");
                assert!(!h.heavy_hitters().is_empty());
                recovered.kill();
                let _ = std::fs::remove_dir_all(dir);
            }
            best_persisted = best_persisted.max(tput);
            println!(
                "{}",
                row(&[
                    shards.to_string(),
                    interval.to_string(),
                    format!("{:.2}", tput / 1e6),
                    format!("{:.1}", (1.0 - tput / baseline) * 100.0),
                    store.epochs_persisted.to_string(),
                    (store.bytes_written / 1024).to_string(),
                ])
            );
        }
        assert!(
            best_persisted >= 0.90 * baseline,
            "E11: persistence overhead above 10% at {shards} shards \
             ({best_persisted:.0} vs baseline {baseline:.0} items/s)"
        );
    }
    println!();
}

/// E12 — the globally consistent sliding window: accuracy of the aligned
/// cross-shard window versus a single-thread exact baseline under
/// skew-aware routing (the hardest case: the Zipf(1.5) head key's
/// occurrences are dealt round-robin across every shard), and the ingest
/// overhead of running the window at all. Asserts both acceptance
/// criteria so a windowing regression fails CI: every checked aligned cut
/// is within the one-sided `ε·n_W` bound of the exact window, and the
/// windowed engine ingests within 20% of the unwindowed path (10% before
/// PR 5 made the unwindowed baseline ~1.5× faster; see the assert below).
fn e12_global_window(quick: bool) {
    println!(
        "== E12: global sliding window — aligned cross-shard cuts vs exact window (skew routing) =="
    );
    let shards = 4usize;
    let phi = 0.01;
    let eps = 0.001;
    let window = 200_000u64;
    let panes = 8usize;
    let slide = window as usize / panes; // 25_000
    let batch_size = slide / 2; // two batches per boundary, single producer
    let batches_n = scaled(64, quick).max(8);
    let batches = zipf_minibatches(100_000, 1.5, batches_n, batch_size, 53);

    // --- accuracy at aligned cuts --------------------------------------
    println!(
        "{}",
        header(&["boundary", "n_W", "max err/εn_W", "window HH", "hot keys"])
    );
    let engine = Engine::spawn(
        EngineConfig::with_shards(shards)
            .heavy_hitters(phi, eps)
            .sliding_window(window)
            .window_panes(panes)
            .skew_aware_routing(),
    );
    let handle = engine.handle();
    let mut exact = ExactSlidingWindow::new(window);
    let total_boundaries = batches_n / 2;
    let checkpoints: Vec<usize> = [1, total_boundaries / 2, total_boundaries]
        .into_iter()
        .filter(|&t| t >= 1)
        .collect();
    for (i, batch) in batches.iter().enumerate() {
        handle.ingest(batch).expect("engine closed");
        exact.process_minibatch(batch);
        let boundary = i.div_ceil(2);
        if (i + 1) % 2 != 0 || !checkpoints.contains(&boundary) {
            continue;
        }
        engine.drain().unwrap();
        let aligned = handle
            .global_window()
            .expect("aligned window at a boundary");
        assert_eq!(
            aligned.seq(),
            boundary as u64,
            "E12: wrong aligned boundary"
        );
        let n_w = aligned.items();
        assert_eq!(n_w, exact.len() as u64, "E12: window coverage mismatch");
        let mut max_err = 0.0f64;
        for (item, f) in exact.entries() {
            let est = aligned.estimate(item);
            assert!(est <= f, "E12: window estimate {est} above exact {f}");
            max_err = max_err.max((f - est) as f64);
        }
        assert!(
            max_err <= eps * n_w as f64 + 1.0,
            "E12: window error {max_err} above ε·n_W = {}",
            eps * n_w as f64
        );
        // Heavy-hitter bands over the window.
        let reported = handle.sliding_heavy_hitters();
        for (item, f) in exact.entries() {
            if f as f64 >= phi * n_w as f64 {
                assert!(
                    reported.iter().any(|h| h.item == item),
                    "E12: missed window heavy hitter {item}"
                );
            }
        }
        println!(
            "{}",
            row(&[
                boundary.to_string(),
                n_w.to_string(),
                format!("{:.3}", max_err / (eps * n_w as f64)),
                reported.len().to_string(),
                handle.metrics().hot_keys.len().to_string(),
            ])
        );
    }
    assert!(
        !handle.metrics().hot_keys.is_empty(),
        "E12: Zipf(1.5) must promote hot keys under skew routing"
    );
    engine.shutdown().unwrap();

    // --- ingest overhead of the window ---------------------------------
    println!(
        "{}",
        header(&["config", "Mitems/s", "overhead %", "boundaries"])
    );
    let m: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let run = |windowed: bool| -> (f64, u64) {
        let mut config = EngineConfig::with_shards(shards)
            .heavy_hitters(phi, eps)
            .skew_aware_routing();
        if windowed {
            config = config.sliding_window(window).window_panes(panes);
        }
        let engine = Engine::spawn(config);
        let handle = engine.handle();
        let (_, secs) = timed(|| {
            for b in &batches {
                handle.ingest(b).expect("engine closed");
            }
            engine.drain().unwrap();
        });
        let boundaries = handle.metrics().window.map_or(0, |w| w.boundaries);
        engine.shutdown().unwrap();
        (m as f64 / secs, boundaries)
    };
    // Best of three runs damps scheduler noise (the window's measured
    // steady-state overhead is a few percent; see benches/windowed_engine).
    let best = |windowed: bool| {
        let mut best_tput = 0.0f64;
        let mut best_bound = 0u64;
        for _ in 0..3 {
            let (tput, bound) = run(windowed);
            best_tput = best_tput.max(tput);
            best_bound = best_bound.max(bound);
        }
        (best_tput, best_bound)
    };
    let (baseline, _) = best(false);
    println!(
        "{}",
        row(&[
            "no window".into(),
            format!("{:.2}", baseline / 1e6),
            "0.0".into(),
            "-".into(),
        ])
    );
    let (windowed, boundaries) = best(true);
    assert!(boundaries > 0, "E12: the windowed run cut no boundaries");
    println!(
        "{}",
        row(&[
            format!("window {window} x{panes}"),
            format!("{:.2}", windowed / 1e6),
            format!("{:.1}", (1.0 - windowed / baseline) * 100.0),
            boundaries.to_string(),
        ])
    );
    // Budget recalibrated in PR 5: the hot-path rebuild made the
    // *unwindowed* baseline ~1.5× faster, so the window machinery's
    // unchanged absolute cost (pane sealing + boundary markers, paid per
    // `slide` items) is now a larger fraction of a much shorter batch time
    // — windowed throughput itself *rose* ~40% in the same change. 20%
    // still catches a real regression in the boundary path while not
    // penalising making everything else faster; absolute numbers are
    // tracked by E13's bench-json records.
    assert!(
        windowed >= 0.80 * baseline,
        "E12: global-window overhead above 20% \
         ({windowed:.0} vs baseline {baseline:.0} items/s)"
    );
    println!();
}

/// E13 — the ingest hot path after the PR 5 rebuild: (a) an allocation
/// audit of the recycled buffer + scratch-histogram + Misra–Gries augment
/// path (asserts **zero** steady-state allocations per batch — the MG map
/// pre-sizes to `S + max distinct per batch` and the cut-off selection
/// runs in place), (b) the seed per-batch worker loop
/// vs the rebuilt one at 1 and 4 shards on Zipf(1.5) (asserts the rebuilt
/// path ingests ≥ 1.25× the seed path at 4 shards), and (c) the real
/// engine ingesting under hammering concurrent queries, asserting every
/// accuracy parity the engine promises (one-sided MG `ε·m`,
/// overestimate-only Count-Min with the `ε_cm·m` band, windowed
/// `ε·n_W`) still holds with the lock-free publication.
fn e13_hot_path(quick: bool) {
    println!("== E13: ingest hot path — seed loop vs lock-free/allocation-free rebuild ==");
    let batches = zipf_minibatches(100_000, 1.5, scaled(48, quick).max(12), 20_000, 61);
    let m: u64 = batches.iter().map(|b| b.len() as u64).sum();

    // --- (a) allocation audit of the recycled path ----------------------
    assert!(
        alloc_counter::installed(),
        "E13: the counting-allocator shim is not installed in this binary"
    );
    let pool = BufferPool::new(1, 4);
    let router = HashRouter::new(1);
    let mut scratch = HistScratch::new();
    let mut hist = Vec::new();
    // The Misra–Gries augment rides in the audited cycle: its map and
    // selection scratch pre-size to the transient combined set (`S + max
    // distinct per batch`, with in-place cut-off selection), so after
    // warm-up the full route → histogram → MG path allocates nothing.
    let mut hh = InfiniteHeavyHitters::new(0.01, 0.001);
    let mut seed = 0x5eed_1357u64;
    let mut cycle = |batch: &[u64],
                     scratch: &mut HistScratch,
                     hist: &mut Vec<_>,
                     hh: &mut InfiniteHeavyHitters| {
        let mut parts = pool.checkout();
        router.partition_into(batch, &mut parts);
        let sub = std::mem::take(&mut parts[0]);
        pool.checkin(parts);
        seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        psfa::primitives::build_hist_into(&sub, seed, scratch, hist);
        hh.process_histogram(hist, sub.len() as u64);
        pool.give_back(0, sub);
    };
    for batch in &batches {
        cycle(batch, &mut scratch, &mut hist, &mut hh); // warm-up: buffers size themselves
    }
    let before = alloc_counter::allocations();
    for batch in &batches {
        cycle(batch, &mut scratch, &mut hist, &mut hh);
    }
    let recycled_allocs = alloc_counter::allocations() - before;
    println!(
        "  recycled route+histogram+MG path: {recycled_allocs} allocations over {} batches \
         (post-warm-up)",
        batches.len()
    );
    assert_eq!(
        recycled_allocs, 0,
        "E13: the recycled hot path must not allocate at steady state"
    );

    // --- (b) seed worker loop vs rebuilt worker loop --------------------
    println!(
        "{}",
        header(&["shards", "path", "Mitems/s", "allocs/batch", "speedup"])
    );
    let params = HotPathParams::default();
    let mut speedup_at_4 = 0.0f64;
    for &shards in &[1usize, 4] {
        let split = pre_split(&batches, shards);
        let sub_batches = (batches.len() * shards) as u64;
        // Best of 3 runs damps scheduler noise; allocation counts come from
        // the last run (they are deterministic given the workload).
        let mut best = [0.0f64; 2];
        let mut allocs = [0u64; 2];
        for _ in 0..3 {
            let a0 = alloc_counter::allocations();
            let legacy = drive_shards(
                &split,
                |s| LegacyShardLoop::new(s, params),
                |l, b| l.ingest(b),
                |l| l.finish(),
            );
            let a1 = alloc_counter::allocations();
            let hot = drive_shards(
                &split,
                |s| HotShardLoop::new(s, params),
                |l, b| l.ingest(b),
                |l| l.finish(),
            );
            let a2 = alloc_counter::allocations();
            best[0] = best[0].max(legacy);
            best[1] = best[1].max(hot);
            allocs = [a1 - a0, a2 - a1];
        }
        for (path, tput, alloc_count) in [
            ("seed", best[0], allocs[0]),
            ("rebuilt", best[1], allocs[1]),
        ] {
            bench_json::record("E13", &format!("{path} x{shards}"), tput);
            println!(
                "{}",
                row(&[
                    shards.to_string(),
                    path.into(),
                    format!("{:.2}", tput / 1e6),
                    format!("{:.1}", alloc_count as f64 / sub_batches as f64),
                    format!("{:.2}x", tput / best[0]),
                ])
            );
        }
        if shards == 4 {
            speedup_at_4 = best[1] / best[0];
        }
    }
    assert!(
        speedup_at_4 >= 1.25,
        "E13: rebuilt hot path must ingest at least 1.25x the seed path at 4 shards \
         (measured {speedup_at_4:.2}x)"
    );

    // --- (c) the real engine under hammering concurrent queries ---------
    println!("{}", header(&["config", "Mitems/s", "queries ok"]));
    let phi = 0.01;
    let eps = 0.001;
    let cm_eps = 0.0005;
    // Slide = batch size, so every boundary lands exactly on a batch end
    // and the exact reference below can reconstruct the covered prefix.
    let window = 160_000u64;
    let panes = 8usize;
    for &shards in &[1usize, 4] {
        let engine = Engine::spawn(EngineConfig::with_shards(shards).heavy_hitters(phi, eps));
        let handle = engine.handle();
        let (_, secs) = timed(|| {
            for b in &batches {
                handle.ingest(b).expect("engine closed");
            }
            engine.drain().unwrap();
        });
        engine.shutdown().unwrap();
        bench_json::record("E13", &format!("engine x{shards}"), m as f64 / secs);
        println!(
            "{}",
            row(&[
                format!("engine x{shards}"),
                format!("{:.2}", m as f64 / secs / 1e6),
                "-".into(),
            ])
        );
    }

    let mut truth: HashMap<u64, u64> = HashMap::new();
    for b in &batches {
        for &x in b {
            *truth.entry(x).or_insert(0) += 1;
        }
    }
    let engine = Engine::spawn(
        EngineConfig::with_shards(4)
            .heavy_hitters(phi, eps)
            .sliding_window(window)
            .window_panes(panes),
    );
    let handle = engine.handle();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let probes: Vec<u64> = (0..64u64).collect();
    let mut queriers = Vec::new();
    for _ in 0..2 {
        let handle = handle.clone();
        let stop = stop.clone();
        let probes = probes.clone();
        queriers.push(std::thread::spawn(move || {
            let mut rounds = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                for &k in &probes {
                    let est = handle.estimate(k);
                    let cm = handle.cm_estimate(k);
                    // The publication edge guarantees the sketch covers at
                    // least the snapshot's prefix (see shard.rs).
                    assert!(
                        cm >= est,
                        "count-min {cm} below snapshot estimate {est} for {k}"
                    );
                }
                let hh = handle.heavy_hitters();
                assert!(hh.windows(2).all(|w| w[0].estimate >= w[1].estimate));
                let _ = handle.sliding_estimate(probes[rounds as usize % probes.len()]);
                rounds += 1;
            }
            rounds
        }));
    }
    let (_, secs) = timed(|| {
        for b in &batches {
            handle.ingest(b).expect("engine closed");
        }
        engine.drain().unwrap();
    });
    stop.store(true, std::sync::atomic::Ordering::Release);
    let query_rounds: u64 = queriers.into_iter().map(|q| q.join().unwrap()).sum();
    assert!(query_rounds > 0, "E13: query threads never ran");

    // Accuracy parity with everything drained: the lock-free surfaces
    // answer exactly as the locked ones did.
    let slack = (eps * m as f64).ceil() as u64;
    let cm_bound = (cm_eps * m as f64).ceil() as u64;
    let mut cm_violations = 0usize;
    for (&item, &f) in &truth {
        let est = handle.estimate(item);
        assert!(est <= f, "E13: MG estimate {est} above truth {f}");
        assert!(est + slack >= f, "E13: MG estimate {est} under {f} − εm");
        let cm = handle.cm_estimate(item);
        assert!(cm >= f, "E13: count-min {cm} underestimates {f}");
        if cm > f + cm_bound {
            cm_violations += 1;
        }
    }
    assert!(
        cm_violations <= truth.len() / 20,
        "E13: {cm_violations}/{} items exceeded the ε_cm·m band",
        truth.len()
    );
    // The aligned global window against an exact reference at the same cut.
    let aligned = handle.global_window().expect("a boundary was crossed");
    let slide = window / panes as u64;
    let covered = (aligned.seq() * slide).min(m) as usize;
    let history: Vec<u64> = batches.iter().flatten().copied().collect();
    let window_truth = exact_window_counts(&history[..covered], window);
    assert_eq!(aligned.items(), window.min(covered as u64));
    let w_slack = (eps * aligned.items() as f64).ceil() as u64;
    for (&item, &f) in &window_truth {
        let est = aligned.estimate(item);
        assert!(est <= f, "E13: window estimate {est} above truth {f}");
        assert!(
            est + w_slack >= f,
            "E13: window estimate {est} under {f} by more than ε·n_W"
        );
    }
    engine.shutdown().unwrap();
    println!(
        "{}",
        row(&[
            format!("engine x4 + window, {query_rounds} query rounds"),
            format!("{:.2}", m as f64 / secs / 1e6),
            "all parity checks passed".into(),
        ])
    );
    println!();
}

/// E14 — observability overhead and latency percentiles.
///
/// Part (a) measures the cost of the full instrumentation suite with a
/// same-binary toggle: two engines with identical configuration except
/// [`EngineConfig::observe`], driven over the same minibatches. The
/// acceptance bar is <3% ingest overhead (the try-send fast path records a
/// zero without reading the clock, so the hot path pays one relaxed
/// fetch-add per minibatch part).
///
/// Part (b) hammers an instrumented engine with queries while ingesting and
/// harvests the resulting latency distributions — producer enqueue wait,
/// per-shard batch service, snapshot staleness, and per-kind query latency —
/// into the bench-json trajectory as percentile records.
fn e14_observability(quick: bool) {
    println!("== E14: observability — same-binary toggle overhead + latency percentiles ==");
    let batches = zipf_minibatches(100_000, 1.3, scaled(48, quick).max(12), 20_000, 67);
    let m: u64 = batches.iter().map(|b| b.len() as u64).sum();

    // --- (a) ingest overhead of the instrumentation ---------------------
    let run = |observe: bool| -> f64 {
        let mut config = EngineConfig::with_shards(4)
            .heavy_hitters(0.01, 0.001)
            .sliding_window(160_000);
        if observe {
            config = config.observe();
        }
        let engine = Engine::spawn(config);
        let handle = engine.handle();
        let (_, secs) = timed(|| {
            for b in &batches {
                handle.ingest(b).expect("engine closed");
            }
            engine.drain().unwrap();
        });
        engine.shutdown().unwrap();
        m as f64 / secs
    };
    // Best-of-N interleaved runs damp scheduler noise.
    let mut base = 0.0f64;
    let mut instrumented = 0.0f64;
    for _ in 0..3 {
        base = base.max(run(false));
        instrumented = instrumented.max(run(true));
    }
    println!("{}", header(&["config", "Mitems/s", "relative"]));
    for (config, tput) in [("engine x4", base), ("engine x4 + obs", instrumented)] {
        bench_json::record("E14", config, tput);
        println!(
            "{}",
            row(&[
                config.into(),
                format!("{:.2}", tput / 1e6),
                format!("{:.3}x", tput / base),
            ])
        );
    }
    // `--quick` runs a few small batches where per-run noise exceeds the
    // instrumentation cost; the 3% bar applies to full-length runs.
    let floor = if quick { 0.80 } else { 0.97 };
    assert!(
        instrumented >= floor * base,
        "E14: instrumented ingest must reach {floor}x the uninstrumented rate \
         (measured {:.3}x)",
        instrumented / base
    );

    // --- (b) latency percentiles under hammering queries ----------------
    let engine = Engine::spawn(
        EngineConfig::with_shards(4)
            .queue_capacity(4)
            .heavy_hitters(0.01, 0.001)
            .sliding_window(160_000)
            .observe(),
    );
    let handle = engine.handle();
    let probe = 7u64;
    for b in &batches {
        handle.ingest(b).expect("engine closed");
        let _ = handle.estimate(probe);
        let _ = handle.cm_estimate(probe);
        let _ = handle.heavy_hitters();
        let _ = handle.sliding_estimate(probe);
    }
    engine.drain().unwrap();
    let report = handle.metrics().obs.expect("observability is on");
    println!(
        "{}",
        header(&["metric", "samples", "p50 ns", "p90 ns", "p99 ns", "p99.9 ns"])
    );
    for metric in [
        "enqueue_wait",
        "batch_service",
        "publish_staleness",
        "query_estimate",
        "query_cm_estimate",
        "query_heavy_hitters",
        "query_sliding_estimate",
    ] {
        let p = report
            .percentiles(metric)
            .unwrap_or_else(|| panic!("E14: unknown obs section {metric}"));
        assert!(p.count > 0, "E14: no samples recorded for {metric}");
        bench_json::record_latency(
            "E14",
            "engine x4 + obs",
            metric,
            (p.p50, p.p90, p.p99, p.p999),
        );
        println!(
            "{}",
            row(&[
                metric.into(),
                p.count.to_string(),
                p.p50.to_string(),
                p.p90.to_string(),
                p.p99.to_string(),
                p.p999.to_string(),
            ])
        );
    }
    engine.shutdown().unwrap();
    println!();
}

/// E15 — the serving front end under open-loop load over loopback.
///
/// Part (a) runs three concurrent open-loop load generators — ingest,
/// point-estimate queries, and heavy-hitter queries — against one server
/// backed by a 4-shard engine. Latency is measured from each request's
/// *scheduled* send time (no coordinated omission; see
/// `psfa_bench::loadgen`), and the harvested p50/p99/p999 go into the
/// bench-json trajectory as request-latency records. Asserts the runs are
/// error-free, that query p99 stays bounded while ingest runs concurrently
/// (queries read published snapshots and never block on ingest), and that
/// every accepted ingest batch — and nothing else — reached the engine
/// (`Busy` rejections are clean).
///
/// Part (b) overdrives a deliberately slow engine (one shard,
/// `queue_capacity(1)`, a lifted operator that sleeps per batch) and
/// asserts the backpressure contract: the server answers `Busy` instead of
/// buffering, and its peak in-flight bytes stay within the documented
/// `max_connections × MAX_FRAME_LEN × 2` bound.
fn e15_serving(quick: bool) {
    use psfa_bench::loadgen::{run_open_loop, OpenLoopConfig};
    use std::sync::Arc;

    println!("== E15: serving front end — open-loop request latency over loopback ==");
    let phi = 0.01;
    let eps = 0.001;
    let batch_items = 512u64;
    // Pre-generated ingest payloads, reused round-robin by request slot.
    let payloads: Arc<Vec<Vec<u64>>> =
        Arc::new(zipf_minibatches(100_000, 1.2, 64, batch_items as usize, 71));

    // --- (a) request latency under concurrent ingest + queries ----------
    let engine = Engine::spawn(
        EngineConfig::with_shards(4)
            .heavy_hitters(phi, eps)
            .sliding_window(160_000),
    );
    let server = Server::spawn(engine.handle(), ServeConfig::default().max_connections(64))
        .expect("E15: server spawn");
    let addr = server.local_addr();

    let ingest_config = OpenLoopConfig {
        rate_per_sec: 2_000.0,
        total_requests: scaled(8_000, quick).max(300),
        initial_clients: 2,
        max_clients: 8,
        backlog_spawn_threshold: 32,
    };
    let query_config = OpenLoopConfig {
        rate_per_sec: 1_000.0,
        total_requests: scaled(4_000, quick).max(150),
        initial_clients: 2,
        max_clients: 8,
        backlog_spawn_threshold: 32,
    };
    let runs = vec![
        ("ingest", {
            let payloads = Arc::clone(&payloads);
            let config = ingest_config.clone();
            std::thread::spawn(move || {
                run_open_loop(addr, &config, move |i| {
                    Request::IngestBatch(payloads[i % payloads.len()].clone())
                })
            })
        }),
        ("estimate", {
            let config = query_config.clone();
            std::thread::spawn(move || {
                run_open_loop(addr, &config, |i| Request::Estimate(i as u64 % 64))
            })
        }),
        ("heavy_hitters", {
            let config = query_config.clone();
            std::thread::spawn(move || run_open_loop(addr, &config, |_| Request::HeavyHitters))
        }),
    ];
    println!(
        "{}",
        header(&["kind", "ok", "busy", "conns", "req/s", "p50 ns", "p99 ns", "p999 ns"])
    );
    // Generous: loopback queries are microseconds; the cap only has to
    // catch queries *blocking* behind ingest, which would push p99 into
    // whole scheduling quanta.
    let query_p99_cap_ns = 250_000_000u64;
    let mut ingest_completed = 0u64;
    for (kind, join) in runs {
        let report = join
            .join()
            .expect("E15: load generator thread panicked")
            .unwrap_or_else(|e| panic!("E15: {kind} load generator failed: {e}"));
        assert_eq!(
            report.errors, 0,
            "E15: {kind} load generator hit transport errors"
        );
        if kind == "ingest" {
            ingest_completed = report.completed;
        } else {
            assert_eq!(report.busy, 0, "E15: query path must never answer Busy");
            assert!(
                report.latency.p99 <= query_p99_cap_ns,
                "E15: {kind} p99 {} ns above the 250 ms bound under concurrent ingest",
                report.latency.p99
            );
        }
        bench_json::record_request_latency(
            "E15",
            "serve x4 loopback",
            kind,
            (report.completed, report.busy),
            (report.latency.p50, report.latency.p99, report.latency.p999),
        );
        println!(
            "{}",
            row(&[
                kind.into(),
                report.completed.to_string(),
                report.busy.to_string(),
                report.clients.to_string(),
                format!("{:.0}", report.requests_per_sec),
                report.latency.p50.to_string(),
                report.latency.p99.to_string(),
                report.latency.p999.to_string(),
            ])
        );
    }
    engine.drain().unwrap();
    // Busy rejections are clean: exactly the acknowledged batches arrived.
    let handle = engine.handle();
    assert_eq!(
        handle.total_items(),
        ingest_completed * batch_items,
        "E15: engine item count must match acknowledged ingest batches exactly"
    );
    let metrics = server.shutdown();
    assert_eq!(metrics.frame_errors, 0, "E15: no protocol errors expected");
    engine.shutdown().unwrap();

    // --- (b) explicit backpressure under an overdriven slow engine ------
    let sleepy = ("sleepy".to_string(), |_shard: usize| {
        ("sleepy".to_string(), |_minibatch: &[u64]| {
            std::thread::sleep(std::time::Duration::from_millis(2))
        })
    });
    let engine = Engine::builder(
        EngineConfig::with_shards(1)
            .queue_capacity(1)
            .heavy_hitters(phi, eps),
    )
    .lift(sleepy)
    .spawn();
    let max_connections = 8usize;
    let server = Server::spawn(
        engine.handle(),
        ServeConfig::default().max_connections(max_connections),
    )
    .expect("E15: backpressure server spawn");
    let config = OpenLoopConfig {
        rate_per_sec: 2_000.0,
        total_requests: scaled(2_000, quick).max(300),
        initial_clients: 2,
        max_clients: 4,
        backlog_spawn_threshold: 16,
    };
    let addr = server.local_addr();
    let slow_payloads = Arc::clone(&payloads);
    let report = run_open_loop(addr, &config, move |i| {
        Request::IngestBatch(slow_payloads[i % slow_payloads.len()].clone())
    })
    .expect("E15: backpressure load generator");
    assert_eq!(
        report.errors, 0,
        "E15: Busy must be a response, not an error"
    );
    assert!(
        report.busy > 0,
        "E15: overdriving a queue_capacity(1) engine must surface Busy"
    );
    bench_json::record_request_latency(
        "E15",
        "serve x1 queue=1 overdriven",
        "ingest",
        (report.completed, report.busy),
        (report.latency.p50, report.latency.p99, report.latency.p999),
    );
    let metrics = server.shutdown();
    assert_eq!(
        metrics.busy_responses, report.busy,
        "E15: every Busy the client saw came from the engine's admission check"
    );
    let inflight_cap = (max_connections * MAX_FRAME_LEN * 2) as u64;
    assert!(
        metrics.peak_inflight_bytes > 0 && metrics.peak_inflight_bytes <= inflight_cap,
        "E15: peak in-flight bytes {} outside (0, {inflight_cap}]",
        metrics.peak_inflight_bytes
    );
    engine.drain().unwrap();
    let final_report = engine.shutdown().unwrap();
    assert_eq!(
        final_report.total_items(),
        report.completed * batch_items,
        "E15: rejected batches must leave no partial state behind"
    );
    println!(
        "  backpressure: {} accepted, {} busy ({}% shed), peak in-flight {} B \u{2264} cap {} B\n",
        report.completed,
        report.busy,
        report.busy * 100 / (report.completed + report.busy).max(1),
        metrics.peak_inflight_bytes,
        inflight_cap
    );
}

/// E16 — multi-producer ingest scaling: the two contention-free ingest
/// modes raced head-to-head across producers × shards.
///
/// **Lanes** (the default): each producer owns one SPSC lane per shard;
/// routing runs on the producer thread into producer-private scratch, and
/// shard workers drain every producer's lane. **Thread-local**
/// ([`EngineConfig::thread_local_ingest`]): each producer owns a private
/// Misra–Gries + Count-Min substream merged into query answers at read
/// time — no routing, no cross-thread handoff, no shard workers involved.
///
/// Two measurements per (mode, p) point, both recorded in the bench-json
/// trajectory:
///
/// * **wall-clock** — `p` real producer threads driving the engine,
///   `drain` included. On a multi-core host this is the end-to-end
///   scaling number.
/// * **critical path** — each parallel stage's substream timed *serially*,
///   reporting `m / max_stage_time`: what `p` cores would sustain if the
///   slowest stage bounded the run. For thread-local mode the stages are
///   the `p` producer substreams; for lanes mode the bound is the
///   slowest shard's share of the routed stream through the rebuilt
///   worker loop (routing on the producers is a strictly cheaper stage).
///   This is the honest load-balance component of scaling on hosts with
///   too few cores to show it on the wall clock (this repository's CI
///   runs single-core).
///
/// The winning mode is whichever ingests faster at p = 4 on the wall
/// clock. Asserts the winning mode scales ≥ 1.7× from 1 → 4 — measured on
/// the wall clock when ≥ 8 cores are available, on the critical path
/// otherwise (the printed line says which basis applied). Also asserts
/// exact item conservation through both modes.
fn e16_multi_producer(quick: bool) {
    println!("== E16: multi-producer ingest — SPSC lanes vs thread-local substreams ==");
    let phi = 0.01;
    let eps = 0.001;
    let batches = zipf_minibatches(100_000, 1.2, scaled(64, quick).max(8), 20_000, 73);
    let m: u64 = batches.iter().map(|b| b.len() as u64).sum();

    // Round-robin split of the batch sequence across `p` producers.
    let slices = |p: usize| -> Vec<Vec<&Vec<u64>>> {
        (0..p)
            .map(|k| batches.iter().skip(k).step_by(p).collect())
            .collect()
    };

    // Wall-clock: `p` producer threads driving the real engine, with
    // `p` shards in lanes mode (the sweep couples producers to shards).
    let wall = |thread_local: bool, p: usize| -> f64 {
        let mut config = EngineConfig::with_shards(p).heavy_hitters(phi, eps);
        if thread_local {
            config = EngineConfig::with_shards(1)
                .heavy_hitters(phi, eps)
                .thread_local_ingest();
        }
        let engine = Engine::spawn(config);
        let handle = engine.handle();
        let (_, secs) = timed(|| {
            std::thread::scope(|scope| {
                for part in slices(p) {
                    let mut producer = handle.producer();
                    scope.spawn(move || {
                        for batch in part {
                            producer.ingest(batch).expect("engine closed");
                        }
                        producer.flush();
                    });
                }
            });
            engine.drain().unwrap();
        });
        assert_eq!(
            handle.total_items(),
            m,
            "E16: every accepted item must be counted exactly once"
        );
        engine.shutdown().unwrap();
        m as f64 / secs
    };

    // Critical path, thread-local mode: each producer substream timed
    // serially; the slowest bounds a parallel run.
    let cp_thread_local = |p: usize| -> f64 {
        let engine = Engine::spawn(
            EngineConfig::with_shards(1)
                .heavy_hitters(phi, eps)
                .thread_local_ingest(),
        );
        let handle = engine.handle();
        let mut worst = 0.0f64;
        for part in slices(p) {
            let mut producer = handle.producer();
            let (_, secs) = timed(|| {
                for batch in part {
                    producer.ingest(batch).expect("engine closed");
                }
                producer.flush();
            });
            worst = worst.max(secs);
        }
        assert_eq!(handle.total_items(), m, "E16: thread-local conservation");
        engine.shutdown().unwrap();
        m as f64 / worst
    };

    // Critical path, lanes mode: the shard stage bounds the pipeline, so
    // time each shard's routed share through the rebuilt worker loop.
    let cp_lanes = |p: usize| -> f64 {
        let split = pre_split(&batches, p);
        let params = HotPathParams::default();
        let mut worst = 0.0f64;
        for (shard, shard_batches) in split.iter().enumerate() {
            let mut shard_loop = HotShardLoop::new(shard, params);
            let (_, secs) = timed(|| {
                for batch in shard_batches {
                    shard_loop.ingest(batch);
                }
                shard_loop.finish();
            });
            worst = worst.max(secs);
        }
        m as f64 / worst
    };

    println!(
        "{}",
        header(&["mode", "p=shards", "wall Mitems/s", "crit-path Mitems/s"])
    );
    // best-of-2 damps scheduler noise; indexed by log2(p).
    let best2 = |f: &dyn Fn() -> f64| f().max(f());
    let mut wall_tput = [[0.0f64; 3]; 2];
    let mut cp_tput = [[0.0f64; 3]; 2];
    for (mode_idx, (mode, thread_local)) in [("lanes", false), ("thread-local", true)]
        .into_iter()
        .enumerate()
    {
        for (i, &p) in [1usize, 2, 4].iter().enumerate() {
            let w = best2(&|| wall(thread_local, p));
            let cp = if thread_local {
                best2(&|| cp_thread_local(p))
            } else {
                best2(&|| cp_lanes(p))
            };
            wall_tput[mode_idx][i] = w;
            cp_tput[mode_idx][i] = cp;
            bench_json::record("E16", &format!("{mode} p{p}"), w);
            bench_json::record("E16", &format!("{mode} p{p} critical-path"), cp);
            println!(
                "{}",
                row(&[
                    mode.into(),
                    p.to_string(),
                    format!("{:.2}", w / 1e6),
                    format!("{:.2}", cp / 1e6),
                ])
            );
        }
    }

    let winner = if wall_tput[0][2] >= wall_tput[1][2] {
        0
    } else {
        1
    };
    let winner_name = ["lanes", "thread-local"][winner];
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (ratio, basis) = if cores >= 8 {
        (wall_tput[winner][2] / wall_tput[winner][0], "wall-clock")
    } else {
        (cp_tput[winner][2] / cp_tput[winner][0], "critical-path")
    };
    println!(
        "  winner at p=4: {winner_name} ({:.2} Mitems/s wall); 1→4 scaling {ratio:.2}x \
         ({basis} basis, {cores} core(s))\n",
        wall_tput[winner][2] / 1e6
    );
    assert!(
        ratio >= 1.7,
        "E16: the winning ingest mode ({winner_name}) must scale at least 1.7x from \
         1 to 4 shards on the {basis} basis (measured {ratio:.2}x)"
    );
}

/// E17 — fault tolerance: two injected worker kills under concurrent
/// ingest + query load. The engine must keep answering (zero aborted
/// queries), recover both workers from their last published snapshots,
/// honour the documented one-sided bound against an exact reference of
/// the offered stream, and trace a measurable unavailability window per
/// fault (quarantine → restart), committed as an availability record.
fn e17_fault_tolerance(quick: bool) {
    use std::sync::atomic::{AtomicBool, Ordering};

    println!("== E17: fault tolerance — two injected worker kills under ingest+query load ==");
    let shards = 4;
    let phi = 0.01;
    let eps = 0.001;
    let batches = zipf_minibatches(100_000, 1.2, scaled(64, quick).max(16), 10_000, 91);
    let total_batches = batches.len() as u64;
    let m: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let mut exact: HashMap<u64, u64> = HashMap::new();
    for b in &batches {
        for &x in b {
            *exact.entry(x).or_insert(0) += 1;
        }
    }

    // Two kills at one-third and two-thirds of the stream (per-shard
    // batch ordinals; every minibatch lands parts on all four shards),
    // each followed by a 25 ms supervisor backoff so the quarantine
    // window is wide enough for the query thread to observe.
    let kills = [
        (1usize, (total_batches / 3).max(2)),
        (2usize, (2 * total_batches / 3).max(4)),
    ];
    let plan = FaultPlan::new()
        .with_worker_panic(kills[0].0, kills[0].1)
        .with_worker_panic(kills[1].0, kills[1].1)
        .with_restart_delay(std::time::Duration::from_millis(25));
    let engine = Engine::spawn(
        EngineConfig::with_shards(shards)
            .heavy_hitters(phi, eps)
            .observe()
            .fault_injection(plan),
    );
    let handle = engine.handle();

    // Concurrent query load: every answer must come back — degraded or
    // not — while the workers die and restart underneath it.
    let stop = AtomicBool::new(false);
    let (queries_total, queries_degraded, secs) = std::thread::scope(|scope| {
        let qh = engine.handle();
        let stop_ref = &stop;
        let query = scope.spawn(move || {
            let mut total = 0u64;
            let mut degraded = 0u64;
            while !stop_ref.load(Ordering::Acquire) {
                let heavy = qh.heavy_hitters_checked();
                let point = qh.estimate_checked(1);
                total += 2;
                degraded += u64::from(heavy.degraded.is_some());
                degraded += u64::from(point.degraded.is_some());
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            (total, degraded)
        });
        let (_, secs) = timed(|| {
            for b in &batches {
                handle
                    .ingest(b)
                    .expect("the engine must keep accepting while workers restart");
            }
            handle
                .drain()
                .expect("both kills must be recovered, not fatal");
        });
        stop.store(true, Ordering::Release);
        let (total, degraded) = query.join().expect("zero aborted queries");
        (total, degraded, secs)
    });

    // Unavailability windows: ShardQuarantined → WorkerRestart trace
    // pairs, one per fault, measured on the supervisor's own clock.
    let events = handle.trace_events();
    let mut windows_ns: Vec<u64> = Vec::new();
    for q in events
        .iter()
        .filter(|e| e.kind == TraceKind::ShardQuarantined)
    {
        if let Some(r) = events.iter().find(|e| {
            e.kind == TraceKind::WorkerRestart && e.shard == q.shard && e.at_ns >= q.at_ns
        }) {
            windows_ns.push(r.at_ns - q.at_ns);
        }
    }
    windows_ns.sort_unstable();
    let pct = |q: f64| -> u64 {
        if windows_ns.is_empty() {
            return 0;
        }
        let idx = ((windows_ns.len() as f64 * q).ceil() as usize).clamp(1, windows_ns.len());
        windows_ns[idx - 1]
    };

    let metrics = handle.metrics();
    let restarts = metrics.worker_restarts();
    let m_eff = handle.total_items();
    let lost = m - m_eff;

    // The documented post-recovery contract: estimates never exceed the
    // exact offered count (loss only shrinks counts, never invents them),
    // and any item heavier than φ·m_eff + lost must still be reported.
    let answer = handle.heavy_hitters_checked();
    for hh in &answer.value {
        let truth = exact.get(&hh.item).copied().unwrap_or(0);
        assert!(
            hh.estimate <= truth,
            "E17: one-sided bound violated for {} ({} > {truth})",
            hh.item,
            hh.estimate
        );
    }
    let coverage_floor = (phi * m_eff as f64).ceil() as u64 + lost + 1;
    for (&item, &truth) in &exact {
        if truth >= coverage_floor {
            assert!(
                answer.value.iter().any(|hh| hh.item == item),
                "E17: item {item} (count {truth} ≥ floor {coverage_floor}) missing after recovery"
            );
        }
    }

    println!("{}", header(&["metric", "value"]));
    for (k, v) in [
        ("faults injected", kills.len().to_string()),
        ("workers restarted", restarts.to_string()),
        ("items offered", m.to_string()),
        ("items lost to restarts", lost.to_string()),
        ("queries under fire", queries_total.to_string()),
        ("degraded answers", queries_degraded.to_string()),
        (
            "unavailability p50",
            format!("{:.2} ms", pct(0.50) as f64 / 1e6),
        ),
        (
            "unavailability max",
            format!("{:.2} ms", pct(1.0) as f64 / 1e6),
        ),
        (
            "ingest throughput",
            format!("{:.2} Mitems/s", m as f64 / secs / 1e6),
        ),
    ] {
        println!("{}", row(&[k.into(), v]));
    }

    assert_eq!(
        restarts,
        kills.len() as u64,
        "E17: every kill must be recovered"
    );
    assert!(
        metrics.quarantined_shards().is_empty(),
        "E17: no shard may stay quarantined after the run"
    );
    assert_eq!(
        windows_ns.len(),
        kills.len(),
        "E17: every fault must trace its unavailability window"
    );

    bench_json::record_availability(
        "E17",
        &format!("engine x{shards}, {} worker kills", kills.len()),
        (kills.len() as u64, restarts),
        (queries_total, queries_degraded),
        (pct(0.50), pct(0.99), pct(1.0)),
    );
    engine
        .shutdown()
        .expect("E17: recovered engine must shut down cleanly");
    println!();
}

/// F2 — the γ-snapshot worked example of Figure 2.
fn f2_snapshot_example() {
    println!("== F2: γ-snapshot worked example (Figure 2): 23-bit stream, γ = 3, window 12 ==");
    let bits: Vec<bool> = [
        0, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0,
    ]
    .iter()
    .map(|&x| x == 1)
    .collect();
    let mut sbbc = Sbbc::unbounded(6, 12); // λ = 6 ⇒ γ = 3
    sbbc.advance(&CompactedSegment::from_bits(&bits));
    let snapshot = sbbc.snapshot();
    let m = bits[bits.len() - 12..].iter().filter(|&&b| b).count() as u64;
    println!(
        "  sampled blocks Q = {:?}",
        snapshot.blocks().collect::<Vec<_>>()
    );
    println!("  trailing ones  ℓ = {}", snapshot.ell());
    println!("  val = γ|Q| + ℓ  = {}", snapshot.val());
    println!(
        "  true window count m = {m}  (Lemma 3.2: m ≤ val ≤ m + 2γ = {})",
        m + 6
    );
    println!(
        "  (the figure lists Q = {{4, 7}}, ℓ = 1 under its deferred-tail-block convention; \
         Definition 3.1 as written also records block 8 — see DESIGN.md)"
    );
    println!();
}
