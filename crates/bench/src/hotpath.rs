//! Side-by-side simulations of the shard ingest hot path, before and after
//! the PR 5 rebuild — the measurement substrate of experiment E13 and
//! `benches/ingest_hotpath.rs`.
//!
//! The engine's per-batch worker loop cannot be A/B-tested in place (the
//! old path is gone), so these two structs replicate each version's
//! per-batch costs out of the same public library pieces, minus the
//! channel/thread plumbing both versions share:
//!
//! * [`LegacyShardLoop`] — the seed behaviour: an allocating `build_hist`
//!   per batch for the Misra–Gries update, a **second** histogram pass
//!   inside `Mutex<ParallelCountMin>::process_minibatch` (the seed never
//!   shared the histogram with the sketch), and an `O(1/ε)`
//!   `tracked_items()` clone published through an `RwLock` write after
//!   **every** batch.
//! * [`HotShardLoop`] — the rebuilt path: one histogram into reused
//!   scratch shared by both summaries, relaxed-atomic Count-Min adds, and
//!   lazy `ArcCell` publication only when the summary's membership
//!   changes.
//!
//! Both expose the same `ingest` shape so harnesses drive them
//! identically; `finish` publishes any pending snapshot so queries against
//! either see final state.

use psfa::prelude::*;
use psfa::primitives::{build_hist, build_hist_into, HistogramEntry};
use std::sync::{Arc, Mutex, RwLock};

/// Heavy-hitter/Count-Min parameters shared by both loops (the engine's
/// defaults, i.e. what E9 measured the seed with).
#[derive(Debug, Clone, Copy)]
pub struct HotPathParams {
    /// Heavy-hitter threshold φ.
    pub phi: f64,
    /// Misra–Gries error ε.
    pub epsilon: f64,
    /// Count-Min error.
    pub cm_epsilon: f64,
    /// Count-Min failure probability.
    pub cm_delta: f64,
    /// Count-Min hash seed.
    pub cm_seed: u64,
}

impl Default for HotPathParams {
    fn default() -> Self {
        Self {
            phi: 0.01,
            epsilon: 0.001,
            cm_epsilon: 0.0005,
            cm_delta: 0.01,
            cm_seed: 0x00C0_FFEE,
        }
    }
}

/// The seed (pre-PR-5) per-batch shard loop; see the module docs.
pub struct LegacyShardLoop {
    hh: InfiniteHeavyHitters,
    count_min: Mutex<ParallelCountMin>,
    snapshot: RwLock<Arc<Vec<(u64, u64)>>>,
    hist_seed: u64,
}

impl LegacyShardLoop {
    /// Builds a loop for one shard.
    pub fn new(shard: usize, params: HotPathParams) -> Self {
        Self {
            hh: InfiniteHeavyHitters::new(params.phi, params.epsilon),
            count_min: Mutex::new(ParallelCountMin::new(
                params.cm_epsilon,
                params.cm_delta,
                params.cm_seed,
            )),
            snapshot: RwLock::new(Arc::new(Vec::new())),
            hist_seed: 0x5eed_0000 ^ shard as u64,
        }
    }

    /// One batch through the seed path: two histogram passes, a mutex'd
    /// sketch update, and an eager `O(1/ε)` clone + `RwLock` publication.
    pub fn ingest(&mut self, minibatch: &[u64]) {
        self.hist_seed = self
            .hist_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        let hist = build_hist(minibatch, self.hist_seed);
        self.hh.process_histogram(&hist, minibatch.len() as u64);
        self.count_min
            .lock()
            .expect("legacy count-min lock poisoned")
            .process_minibatch(minibatch);
        *self
            .snapshot
            .write()
            .expect("legacy snapshot lock poisoned") =
            Arc::new(self.hh.estimator().tracked_items());
    }

    /// No-op (the legacy loop publishes eagerly); here for drive symmetry.
    pub fn finish(&mut self) {}

    /// The published Misra–Gries estimate for `item`.
    pub fn estimate(&self, item: u64) -> u64 {
        self.snapshot
            .read()
            .expect("legacy snapshot lock poisoned")
            .iter()
            .find(|&&(i, _)| i == item)
            .map_or(0, |&(_, e)| e)
    }
}

/// The rebuilt (PR 5) per-batch shard loop; see the module docs.
pub struct HotShardLoop {
    hh: InfiniteHeavyHitters,
    count_min: AtomicCountMin,
    snapshot: ArcCell<Vec<(u64, u64)>>,
    hist_scratch: HistScratch,
    hist: Vec<HistogramEntry>,
    published_entries: usize,
    dirty: bool,
    hist_seed: u64,
}

impl HotShardLoop {
    /// Builds a loop for one shard.
    pub fn new(shard: usize, params: HotPathParams) -> Self {
        Self {
            hh: InfiniteHeavyHitters::new(params.phi, params.epsilon),
            count_min: AtomicCountMin::new(params.cm_epsilon, params.cm_delta, params.cm_seed),
            snapshot: ArcCell::new(Arc::new(Vec::new())),
            hist_scratch: HistScratch::new(),
            hist: Vec::new(),
            published_entries: 0,
            dirty: false,
            hist_seed: 0x5eed_0000 ^ shard as u64,
        }
    }

    /// One batch through the rebuilt path: one scratch-reused histogram
    /// shared by both summaries, lock-free sketch adds, lazy publication.
    pub fn ingest(&mut self, minibatch: &[u64]) {
        self.hist_seed = self
            .hist_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        build_hist_into(
            minibatch,
            self.hist_seed,
            &mut self.hist_scratch,
            &mut self.hist,
        );
        let cutoff = self
            .hh
            .process_histogram(&self.hist, minibatch.len() as u64);
        self.count_min.ingest_histogram(&self.hist);
        if cutoff > 0 || self.hh.estimator().num_counters() != self.published_entries {
            self.publish();
        } else {
            self.dirty = true;
        }
    }

    fn publish(&mut self) {
        let entries = self.hh.estimator().tracked_items_sorted();
        self.published_entries = entries.len();
        self.dirty = false;
        self.snapshot.set(Arc::new(entries));
    }

    /// Publishes any deferred snapshot (the worker does this when its queue
    /// runs dry or a drain barrier arrives).
    pub fn finish(&mut self) {
        if self.dirty {
            self.publish();
        }
    }

    /// The published Misra–Gries estimate for `item`.
    pub fn estimate(&self, item: u64) -> u64 {
        let snapshot = self.snapshot.get();
        snapshot
            .binary_search_by_key(&item, |&(i, _)| i)
            .map_or(0, |at| snapshot[at].1)
    }

    /// The live Count-Min overestimate for `item`.
    pub fn cm_estimate(&self, item: u64) -> u64 {
        self.count_min.query(item)
    }
}

/// Pre-splits a batch stream across `shards` by hash ownership: one
/// substream of per-batch sub-batches per shard (what the engine's router
/// does before the per-shard queues — identical input to both loops).
pub fn pre_split(batches: &[Vec<u64>], shards: usize) -> Vec<Vec<Vec<u64>>> {
    let mut per_shard: Vec<Vec<Vec<u64>>> = (0..shards).map(|_| Vec::new()).collect();
    for batch in batches {
        for (shard, part) in partition_by_key(batch, shards).into_iter().enumerate() {
            per_shard[shard].push(part);
        }
    }
    per_shard
}

/// Drives one loop per shard on its pre-split substream, all shards on
/// their own threads, and returns items-per-second over the wall time from
/// first spawn to last join (the same measurement shape E9 uses for the
/// engine).
pub fn drive_shards<L: Send>(
    per_shard: &[Vec<Vec<u64>>],
    build: impl Fn(usize) -> L + Sync,
    ingest: impl Fn(&mut L, &[u64]) + Sync + Copy + Send,
    finish: impl Fn(&mut L) + Sync + Copy + Send,
) -> f64 {
    let items: usize = per_shard.iter().flat_map(|s| s.iter().map(Vec::len)).sum();
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for (shard, substream) in per_shard.iter().enumerate() {
            let mut state = build(shard);
            scope.spawn(move || {
                for batch in substream {
                    ingest(&mut state, batch);
                }
                finish(&mut state);
            });
        }
    });
    items as f64 / start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn both_loops_satisfy_the_one_sided_bound() {
        let params = HotPathParams {
            phi: 0.05,
            epsilon: 0.01,
            cm_epsilon: 0.005,
            ..HotPathParams::default()
        };
        let mut legacy = LegacyShardLoop::new(0, params);
        let mut hot = HotShardLoop::new(0, params);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut generator = ZipfGenerator::new(10_000, 1.3, 5);
        let mut m = 0u64;
        for _ in 0..20 {
            let batch = generator.next_minibatch(3_000);
            for &x in &batch {
                *truth.entry(x).or_insert(0) += 1;
            }
            m += batch.len() as u64;
            legacy.ingest(&batch);
            hot.ingest(&batch);
        }
        legacy.finish();
        hot.finish();
        let slack = (params.epsilon * m as f64).ceil() as u64;
        for (&item, &f) in &truth {
            for est in [legacy.estimate(item), hot.estimate(item)] {
                assert!(est <= f, "estimate {est} above truth {f}");
                assert!(est + slack >= f, "estimate {est} under {f} by more than εm");
            }
            assert!(hot.cm_estimate(item) >= f, "count-min underestimated");
        }
    }

    #[test]
    fn pre_split_covers_every_item() {
        let batches = vec![vec![1u64, 2, 3, 4, 5]; 3];
        let split = pre_split(&batches, 2);
        let total: usize = split.iter().flat_map(|s| s.iter().map(Vec::len)).sum();
        assert_eq!(total, 15);
        assert!(split.iter().all(|s| s.len() == 3));
    }
}
