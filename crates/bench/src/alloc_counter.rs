//! A counting global-allocator shim for allocation audits.
//!
//! The hot-path experiment (E13) claims the recycled ingest path performs
//! *zero* steady-state heap allocations — a claim a benchmark should
//! assert, not assume. [`CountingAllocator`] wraps the system allocator and
//! counts every `alloc`/`realloc` with relaxed atomics (~two uncontended
//! RMWs per allocation: measurable but far below the noise floor of any
//! throughput number reported here).
//!
//! Install it in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: psfa_bench::alloc_counter::CountingAllocator =
//!     psfa_bench::alloc_counter::CountingAllocator;
//! ```
//!
//! The counters are global, so allocation deltas are only attributable when
//! the measured section runs single-threaded (as E13's audit does).
//! [`installed`] reports whether the shim is active in this process (any
//! Rust program allocates before `main`, so a zero count means the shim is
//! not the global allocator) — audits should assert it rather than
//! silently measure nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Counting wrapper around the system allocator (see the module docs).
pub struct CountingAllocator;

// SAFETY: delegates every operation to `System` unchanged; the counters
// are side effects only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Heap allocations (`alloc` + `realloc` calls) since process start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes requested from the allocator since process start.
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// True when [`CountingAllocator`] is this process's global allocator.
pub fn installed() -> bool {
    allocations() > 0
}
