//! Machine-readable benchmark records for the repository's BENCH
//! trajectory.
//!
//! `reproduce --bench-json <path>` collects one record per measurement and
//! writes them as a JSON array. Three record shapes exist:
//!
//! * throughput — `{"experiment", "config", "items_per_sec"}` (every
//!   committed `BENCH_<pr>.json` since PR 5);
//! * latency percentiles — `{"experiment", "config", "metric", "p50_ns",
//!   "p90_ns", "p99_ns", "p999_ns"}` (added with the observability layer:
//!   E14 records enqueue-wait and per-kind query latencies);
//! * request latency — `{"experiment", "config", "metric", "requests",
//!   "busy", "p50_ns", "p99_ns", "p999_ns"}` (added with the serving front
//!   end: E15 records open-loop, coordinated-omission-free request
//!   latencies per request kind, plus how many requests ran and how many
//!   were rejected with `Busy`);
//! * availability — `{"experiment", "config", "faults_injected",
//!   "faults_recovered", "queries_total", "queries_degraded",
//!   "unavail_p50_ns", "unavail_p99_ns", "unavail_max_ns"}` (added with
//!   fault injection: E17 kills workers mid-stream and records the
//!   per-fault unavailability window — quarantine to restart — plus how
//!   many queries answered degraded while it was open).
//!
//! The writer is hand-rolled (no serde in the offline build); experiment,
//! config and metric strings are plain ASCII table labels, escaped for the
//! JSON string characters that could occur. [`validate_file`] checks a
//! committed file against the schema so CI catches a malformed or
//! hand-mangled trajectory.

use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// One benchmark record.
#[derive(Debug, Clone)]
pub enum Record {
    /// One throughput measurement.
    Throughput {
        /// Experiment id, e.g. `"E13"`.
        experiment: String,
        /// Configuration label, e.g. `"engine x4 (new)"`.
        config: String,
        /// Measured ingest throughput.
        items_per_sec: f64,
    },
    /// One latency distribution, as the standard percentile set in
    /// nanoseconds (one-sided log-bucket upper bounds; see `psfa-obs`).
    Latency {
        /// Experiment id, e.g. `"E14"`.
        experiment: String,
        /// Configuration label, e.g. `"engine x4 + obs"`.
        config: String,
        /// Metric name, e.g. `"enqueue_wait"` or `"query_estimate"`.
        metric: String,
        /// Median, ns.
        p50_ns: u64,
        /// 90th percentile, ns.
        p90_ns: u64,
        /// 99th percentile, ns.
        p99_ns: u64,
        /// 99.9th percentile, ns.
        p999_ns: u64,
    },
    /// One open-loop request-latency distribution from the serving front
    /// end. Latency is measured from each request's *scheduled* send time,
    /// so a stalled server inflates the percentiles instead of silently
    /// thinning the sample (no coordinated omission).
    RequestLatency {
        /// Experiment id, e.g. `"E15"`.
        experiment: String,
        /// Configuration label, e.g. `"serve x4 loopback"`.
        config: String,
        /// Request kind, e.g. `"ingest"` or `"estimate"`.
        metric: String,
        /// Requests that completed successfully.
        requests: u64,
        /// Requests rejected with an explicit `Busy` (backpressure).
        busy: u64,
        /// Median, ns, from scheduled send time.
        p50_ns: u64,
        /// 99th percentile, ns.
        p99_ns: u64,
        /// 99.9th percentile, ns.
        p999_ns: u64,
    },
    /// One fault-injection availability measurement: the distribution of
    /// per-fault unavailability windows (first degraded observation to
    /// recovery) under concurrent ingest + query load.
    Availability {
        /// Experiment id, e.g. `"E17"`.
        experiment: String,
        /// Configuration label, e.g. `"engine x4, 2 worker kills"`.
        config: String,
        /// Faults the plan injected.
        faults_injected: u64,
        /// Faults the supervisor recovered (restarted workers).
        faults_recovered: u64,
        /// Queries issued while the faults were firing.
        queries_total: u64,
        /// Queries answered with a `Degraded` annotation.
        queries_degraded: u64,
        /// Median per-fault unavailability window, ns.
        unavail_p50_ns: u64,
        /// 99th-percentile unavailability window, ns.
        unavail_p99_ns: u64,
        /// Worst unavailability window, ns.
        unavail_max_ns: u64,
    },
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

fn push(record: Record) {
    RECORDS
        .lock()
        .expect("bench-json record lock poisoned")
        .push(record);
}

/// Appends one throughput record to the in-process collection.
pub fn record(experiment: &str, config: &str, items_per_sec: f64) {
    push(Record::Throughput {
        experiment: experiment.to_string(),
        config: config.to_string(),
        items_per_sec,
    });
}

/// Appends one latency-percentile record (nanoseconds) to the in-process
/// collection.
pub fn record_latency(
    experiment: &str,
    config: &str,
    metric: &str,
    (p50_ns, p90_ns, p99_ns, p999_ns): (u64, u64, u64, u64),
) {
    push(Record::Latency {
        experiment: experiment.to_string(),
        config: config.to_string(),
        metric: metric.to_string(),
        p50_ns,
        p90_ns,
        p99_ns,
        p999_ns,
    });
}

/// Appends one open-loop request-latency record to the in-process
/// collection. `requests` counts completed requests, `busy` counts explicit
/// backpressure rejections; percentiles are nanoseconds from the scheduled
/// send time.
pub fn record_request_latency(
    experiment: &str,
    config: &str,
    metric: &str,
    (requests, busy): (u64, u64),
    (p50_ns, p99_ns, p999_ns): (u64, u64, u64),
) {
    push(Record::RequestLatency {
        experiment: experiment.to_string(),
        config: config.to_string(),
        metric: metric.to_string(),
        requests,
        busy,
        p50_ns,
        p99_ns,
        p999_ns,
    });
}

/// Appends one availability record from a fault-injection run. The first
/// pair counts faults (injected, recovered), the second counts queries
/// (total, degraded); the triple is the per-fault unavailability-window
/// distribution in nanoseconds (p50, p99, max).
pub fn record_availability(
    experiment: &str,
    config: &str,
    (faults_injected, faults_recovered): (u64, u64),
    (queries_total, queries_degraded): (u64, u64),
    (unavail_p50_ns, unavail_p99_ns, unavail_max_ns): (u64, u64, u64),
) {
    push(Record::Availability {
        experiment: experiment.to_string(),
        config: config.to_string(),
        faults_injected,
        faults_recovered,
        queries_total,
        queries_degraded,
        unavail_p50_ns,
        unavail_p99_ns,
        unavail_max_ns,
    });
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes every collected record to `path` as a JSON array (pretty-printed
/// one object per line) and returns how many were written.
pub fn write_to(path: impl AsRef<Path>) -> std::io::Result<usize> {
    let records = RECORDS
        .lock()
        .expect("bench-json record lock poisoned")
        .clone();
    let mut out = std::fs::File::create(path)?;
    writeln!(out, "[")?;
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        match r {
            Record::Throughput {
                experiment,
                config,
                items_per_sec,
            } => writeln!(
                out,
                "  {{\"experiment\": \"{}\", \"config\": \"{}\", \"items_per_sec\": {:.0}}}{comma}",
                escape(experiment),
                escape(config),
                items_per_sec
            )?,
            Record::Latency {
                experiment,
                config,
                metric,
                p50_ns,
                p90_ns,
                p99_ns,
                p999_ns,
            } => writeln!(
                out,
                "  {{\"experiment\": \"{}\", \"config\": \"{}\", \"metric\": \"{}\", \
                 \"p50_ns\": {p50_ns}, \"p90_ns\": {p90_ns}, \"p99_ns\": {p99_ns}, \
                 \"p999_ns\": {p999_ns}}}{comma}",
                escape(experiment),
                escape(config),
                escape(metric),
            )?,
            Record::RequestLatency {
                experiment,
                config,
                metric,
                requests,
                busy,
                p50_ns,
                p99_ns,
                p999_ns,
            } => writeln!(
                out,
                "  {{\"experiment\": \"{}\", \"config\": \"{}\", \"metric\": \"{}\", \
                 \"requests\": {requests}, \"busy\": {busy}, \
                 \"p50_ns\": {p50_ns}, \"p99_ns\": {p99_ns}, \"p999_ns\": {p999_ns}}}{comma}",
                escape(experiment),
                escape(config),
                escape(metric),
            )?,
            Record::Availability {
                experiment,
                config,
                faults_injected,
                faults_recovered,
                queries_total,
                queries_degraded,
                unavail_p50_ns,
                unavail_p99_ns,
                unavail_max_ns,
            } => writeln!(
                out,
                "  {{\"experiment\": \"{}\", \"config\": \"{}\", \
                 \"faults_injected\": {faults_injected}, \"faults_recovered\": {faults_recovered}, \
                 \"queries_total\": {queries_total}, \"queries_degraded\": {queries_degraded}, \
                 \"unavail_p50_ns\": {unavail_p50_ns}, \"unavail_p99_ns\": {unavail_p99_ns}, \
                 \"unavail_max_ns\": {unavail_max_ns}}}{comma}",
                escape(experiment),
                escape(config),
            )?,
        }
    }
    writeln!(out, "]")?;
    Ok(records.len())
}

/// Validates a committed `BENCH_<pr>.json` file against the record schema:
/// a JSON array, one object per line, each object exactly one of a
/// throughput record (`experiment`, `config`, `items_per_sec`), a latency
/// record (`experiment`, `config`, `metric`, and the four `p*_ns`
/// percentiles), a request-latency record (`experiment`, `config`,
/// `metric`, `requests`, `busy`, and the `p50/p99/p999_ns` percentiles),
/// or an availability record (`experiment`, `config`, the four fault/query
/// counters, and the three `unavail_*_ns` percentiles).
/// Returns the number of valid records, or a description of the first
/// malformed line. Matches exactly what [`write_to`] emits — the point is
/// to catch hand-edited or truncated committed files in CI, not to be a
/// general JSON parser.
pub fn validate_file(path: impl AsRef<Path>) -> Result<usize, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    if lines.next() != Some("[") {
        return Err(format!("{}: must open with a JSON array", path.display()));
    }
    let mut records = 0usize;
    let mut closed = false;
    for line in lines {
        if closed {
            return Err(format!(
                "{}: content after the closing bracket",
                path.display()
            ));
        }
        if line == "]" {
            closed = true;
            continue;
        }
        let object = line.strip_suffix(',').unwrap_or(line);
        let bad = |why: &str| format!("{}: {why}: {line}", path.display());
        if !(object.starts_with('{') && object.ends_with('}')) {
            return Err(bad("expected one object per line"));
        }
        let has_str_key =
            |key: &str| object.contains(&format!("\"{key}\": \"")) && !object.contains('\n');
        let has_num_key = |key: &str| {
            object
                .split(&format!("\"{key}\": "))
                .nth(1)
                .is_some_and(|rest| rest.starts_with(|c: char| c.is_ascii_digit()))
        };
        if !has_str_key("experiment") || !has_str_key("config") {
            return Err(bad("missing experiment/config"));
        }
        let throughput = has_num_key("items_per_sec");
        let latency = has_str_key("metric")
            && ["p50_ns", "p90_ns", "p99_ns", "p999_ns"]
                .iter()
                .all(|k| has_num_key(k));
        let request_latency = has_str_key("metric")
            && ["requests", "busy", "p50_ns", "p99_ns", "p999_ns"]
                .iter()
                .all(|k| has_num_key(k));
        let availability = [
            "faults_injected",
            "faults_recovered",
            "queries_total",
            "queries_degraded",
            "unavail_p50_ns",
            "unavail_p99_ns",
            "unavail_max_ns",
        ]
        .iter()
        .all(|k| has_num_key(k));
        if [throughput, latency, request_latency, availability]
            .iter()
            .filter(|&&shape| shape)
            .count()
            != 1
        {
            return Err(bad(
                "must be exactly one of a throughput, latency, request-latency, \
                 or availability record",
            ));
        }
        records += 1;
    }
    if !closed {
        return Err(format!("{}: missing closing bracket", path.display()));
    }
    if records == 0 {
        return Err(format!("{}: no records", path.display()));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_as_json_lines() {
        record("E13", "engine x4 \"new\"", 1234567.89);
        record_latency(
            "E14",
            "engine x4 + obs",
            "enqueue_wait",
            (64, 128, 512, 2048),
        );
        record_request_latency(
            "E15",
            "serve x4 loopback",
            "ingest",
            (1000, 7),
            (10, 90, 900),
        );
        record_availability(
            "E17",
            "engine x4, 2 worker kills",
            (2, 2),
            (5000, 41),
            (1_500_000, 2_100_000, 2_100_000),
        );
        let dir = std::env::temp_dir().join(format!("psfa-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let n = write_to(&path).unwrap();
        assert!(n >= 3);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(text.contains("\"experiment\": \"E13\""));
        assert!(text.contains("\\\"new\\\""));
        assert!(text.contains("\"items_per_sec\": 1234568"));
        assert!(text.contains("\"metric\": \"enqueue_wait\""));
        assert!(text.contains("\"p999_ns\": 2048"));
        assert!(text.contains("\"requests\": 1000, \"busy\": 7"));
        assert!(text.contains("\"faults_injected\": 2, \"faults_recovered\": 2"));
        assert!(text.contains("\"unavail_max_ns\": 2100000"));
        // What the writer emits, the validator accepts.
        assert_eq!(validate_file(&path).unwrap(), n);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_bench_trajectories_validate() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut seen = 0usize;
        for entry in std::fs::read_dir(&root).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                let n = validate_file(&path).unwrap_or_else(|e| panic!("schema violation: {e}"));
                assert!(n > 0, "{name}: empty trajectory");
                seen += 1;
            }
        }
        assert!(seen >= 1, "no committed BENCH_*.json trajectories found");
    }

    #[test]
    fn validator_rejects_malformed_files() {
        let dir = std::env::temp_dir().join(format!("psfa-bench-json-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, content: &str| {
            let path = dir.join(name);
            std::fs::write(&path, content).unwrap();
            path
        };
        // Not an array.
        let p = write("a.json", "{\"experiment\": \"E9\"}\n");
        assert!(validate_file(p).is_err());
        // Truncated (no closing bracket).
        let p = write(
            "b.json",
            "[\n  {\"experiment\": \"E9\", \"config\": \"x\", \"items_per_sec\": 1}\n",
        );
        assert!(validate_file(p).is_err());
        // Missing keys.
        let p = write("c.json", "[\n  {\"experiment\": \"E9\"}\n]\n");
        assert!(validate_file(p).is_err());
        // None of the three record shapes.
        let p = write(
            "d.json",
            "[\n  {\"experiment\": \"E14\", \"config\": \"x\", \"metric\": \"m\"}\n]\n",
        );
        assert!(validate_file(p).is_err());
        // Request-latency record missing its busy counter.
        let p = write(
            "f.json",
            "[\n  {\"experiment\": \"E15\", \"config\": \"x\", \"metric\": \"ingest\", \
             \"requests\": 10, \"p50_ns\": 1, \"p99_ns\": 2, \"p999_ns\": 3}\n]\n",
        );
        assert!(validate_file(p).is_err());
        // Availability record missing one of its unavailability percentiles.
        let p = write(
            "g.json",
            "[\n  {\"experiment\": \"E17\", \"config\": \"x\", \"faults_injected\": 2, \
             \"faults_recovered\": 2, \"queries_total\": 10, \"queries_degraded\": 1, \
             \"unavail_p50_ns\": 5, \"unavail_max_ns\": 9}\n]\n",
        );
        assert!(validate_file(p).is_err());
        // Empty array.
        let p = write("e.json", "[\n]\n");
        assert!(validate_file(p).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
