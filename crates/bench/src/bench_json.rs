//! Machine-readable benchmark records for the repository's BENCH
//! trajectory.
//!
//! `reproduce --bench-json <path>` collects one record per throughput
//! measurement and writes them as a JSON array of
//! `{"experiment", "config", "items_per_sec"}` objects — the format the
//! committed `BENCH_<pr>.json` files use, so successive PRs can be compared
//! mechanically. The writer is hand-rolled (no serde in the offline build);
//! experiment and config strings are plain ASCII table labels, escaped for
//! the JSON string characters that could occur.

use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// One throughput measurement.
#[derive(Debug, Clone)]
pub struct Record {
    /// Experiment id, e.g. `"E13"`.
    pub experiment: String,
    /// Configuration label, e.g. `"engine x4 (new)"`.
    pub config: String,
    /// Measured ingest throughput.
    pub items_per_sec: f64,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Appends one record to the in-process collection.
pub fn record(experiment: &str, config: &str, items_per_sec: f64) {
    RECORDS
        .lock()
        .expect("bench-json record lock poisoned")
        .push(Record {
            experiment: experiment.to_string(),
            config: config.to_string(),
            items_per_sec,
        });
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes every collected record to `path` as a JSON array (pretty-printed
/// one object per line) and returns how many were written.
pub fn write_to(path: impl AsRef<Path>) -> std::io::Result<usize> {
    let records = RECORDS
        .lock()
        .expect("bench-json record lock poisoned")
        .clone();
    let mut out = std::fs::File::create(path)?;
    writeln!(out, "[")?;
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        writeln!(
            out,
            "  {{\"experiment\": \"{}\", \"config\": \"{}\", \"items_per_sec\": {:.0}}}{comma}",
            escape(&r.experiment),
            escape(&r.config),
            r.items_per_sec
        )?;
    }
    writeln!(out, "]")?;
    Ok(records.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_as_json_lines() {
        record("E13", "engine x4 \"new\"", 1234567.89);
        let dir = std::env::temp_dir().join(format!("psfa-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let n = write_to(&path).unwrap();
        assert!(n >= 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(text.contains("\"experiment\": \"E13\""));
        assert!(text.contains("\\\"new\\\""));
        assert!(text.contains("\"items_per_sec\": 1234568"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
