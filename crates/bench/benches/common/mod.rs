//! Shared Criterion configuration for all PSFA benches: small sample counts
//! and short measurement windows so that `cargo bench --workspace` finishes
//! in minutes even on a single-core CI host.

use std::time::Duration;

use criterion::Criterion;

/// The bench configuration used by every bench target.
pub fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200))
        .configure_from_args()
}
