//! E12 bench: the cost of the globally consistent sliding window.
//!
//! Compares engine ingest throughput with the global window off, on, and
//! on with a finer pane count, under both routing policies. The windowed
//! path shares one `buildHist` pass between the heavy-hitter tracker and
//! the open pane, and pays `O(k/ε)` per *boundary* (not per item) to seal,
//! so the expected overhead is a few percent — E12 in `reproduce` asserts
//! the ≤10% budget; this bench tracks the trend.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psfa::prelude::*;
use psfa_bench::zipf_minibatches;

const BATCHES: usize = 24;
const BATCH_SIZE: usize = 12_500;
const WINDOW: u64 = 200_000;

fn bench_windowed_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("windowed_engine");
    let batches = zipf_minibatches(100_000, 1.5, BATCHES, BATCH_SIZE, 11);
    let items = (BATCHES * BATCH_SIZE) as u64;
    group.throughput(Throughput::Elements(items));

    let run = |config: EngineConfig| {
        let engine = Engine::spawn(config);
        let handle = engine.handle();
        for batch in &batches {
            handle.ingest(batch).unwrap();
        }
        engine.drain().unwrap();
        let sealed = handle.global_window().map_or(0, |w| w.items());
        engine.shutdown().unwrap();
        sealed
    };

    for (label, routing) in [
        ("hash", RoutingPolicy::Hash),
        ("skew", RoutingPolicy::skew_aware()),
    ] {
        let base = EngineConfig::with_shards(4)
            .heavy_hitters(0.01, 0.001)
            .routing(routing);
        group.bench_with_input(BenchmarkId::new("no_window", label), &base, |b, config| {
            b.iter(|| run(config.clone()))
        });
        group.bench_with_input(
            BenchmarkId::new("window_8_panes", label),
            &base,
            |b, config| b.iter(|| run(config.clone().sliding_window(WINDOW).window_panes(8))),
        );
        group.bench_with_input(
            BenchmarkId::new("window_32_panes", label),
            &base,
            |b, config| b.iter(|| run(config.clone().sliding_window(WINDOW).window_panes(32))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_windowed_engine
}
criterion_main!(benches);
