//! E5 bench: the three sliding-window frequency-estimation variants
//! (Theorems 5.5, 5.8, 5.4) plus the exact Θ(n)-memory baseline.

mod common;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use psfa::prelude::*;
use psfa_bench::zipf_minibatches;

fn bench_sliding(c: &mut Criterion) {
    let mut group = c.benchmark_group("sliding_freq");
    let eps = 0.01;
    let n = 1u64 << 18;
    let batch = &zipf_minibatches(100_000, 1.1, 1, 10_000, 5)[0];
    let warmup = zipf_minibatches(100_000, 1.1, 8, 10_000, 6);

    macro_rules! bench_variant {
        ($name:literal, $ctor:expr) => {
            group.bench_function($name, |b| {
                let mut warmed = $ctor;
                for w in &warmup {
                    warmed.process_minibatch(w);
                }
                b.iter_batched(
                    || warmed.clone(),
                    |mut est| est.process_minibatch(batch),
                    BatchSize::SmallInput,
                )
            });
        };
    }

    bench_variant!("basic_thm5_5_10k", SlidingFreqBasic::new(eps, n));
    bench_variant!(
        "space_efficient_thm5_8_10k",
        SlidingFreqSpaceEfficient::new(eps, n)
    );
    bench_variant!(
        "work_efficient_thm5_4_10k",
        SlidingFreqWorkEfficient::new(eps, n)
    );
    group.bench_function("exact_window_10k", |b| {
        let mut warmed = ExactSlidingWindow::new(n);
        for w in &warmup {
            warmed.process_minibatch(w);
        }
        b.iter_batched(
            || warmed.clone(),
            |mut est| est.process_minibatch(batch),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_sliding
}
criterion_main!(benches);
