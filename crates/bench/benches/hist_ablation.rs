//! Ablation bench (DESIGN.md §5): the paper's `buildHist` (hash + integer
//! sort + collectBin, Theorem 2.3) vs a fold/reduce hash-map histogram, for
//! varying numbers of distinct items in the minibatch.

mod common;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use psfa::prelude::*;
use psfa::primitives::{build_hist, build_hist_hashmap};
use psfa_bench::zipf_minibatches;

fn bench_hist(c: &mut Criterion) {
    let mut group = c.benchmark_group("hist_ablation");
    for &universe in &[100u64, 10_000, 1_000_000] {
        let batch = &zipf_minibatches(universe, 0.8, 1, 50_000, 3)[0];
        group.bench_with_input(
            BenchmarkId::new("build_hist_50k", universe),
            &universe,
            |b, _| {
                b.iter_batched(
                    || batch.clone(),
                    |items| build_hist(&items, 7),
                    BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hashmap_fold_reduce_50k", universe),
            &universe,
            |b, _| {
                b.iter_batched(
                    || batch.clone(),
                    |items| build_hist_hashmap(&items),
                    BatchSize::SmallInput,
                )
            },
        );
    }
    // CSS construction, the other §2 primitive, for context.
    let mut generator = BinaryStreamGenerator::new(0.5, 1);
    let bits = generator.next_bits(50_000);
    group.bench_function("css_from_bits_50k", |b| {
        b.iter(|| CompactedSegment::from_bits(&bits))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_hist
}
criterion_main!(benches);
