//! E9 bench: sharded engine vs single-threaded pipeline throughput on the
//! same Zipf workload — the perf trajectory for the serving layer.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psfa::prelude::*;
use psfa_bench::zipf_minibatches;

const BATCHES: usize = 20;
const BATCH_SIZE: usize = 10_000;

fn bench_engine_vs_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_vs_pipeline");
    let batches = zipf_minibatches(200_000, 1.1, BATCHES, BATCH_SIZE, 5);
    let items = (BATCHES * BATCH_SIZE) as u64;
    group.throughput(Throughput::Elements(items));

    group.bench_function("single_thread_hh_cm", |b| {
        b.iter(|| {
            let mut hh = InfiniteHeavyHitters::new(0.01, 0.001);
            let mut cm = ParallelCountMin::new(0.0005, 0.01, 3);
            for batch in &batches {
                hh.process_minibatch(batch);
                cm.process_minibatch(batch);
            }
            hh.query().len()
        })
    });

    for &shards in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("engine_hh_cm", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let engine = Engine::spawn(
                        EngineConfig::with_shards(shards)
                            .heavy_hitters(0.01, 0.001)
                            .count_min(0.0005, 0.01, 3),
                    );
                    let handle = engine.handle();
                    for batch in &batches {
                        handle.ingest(batch).unwrap();
                    }
                    engine.drain().unwrap();
                    let reported = handle.heavy_hitters().len();
                    engine.shutdown().unwrap();
                    reported
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_engine_vs_pipeline
}
criterion_main!(benches);
