//! E2 bench: basic counting minibatch ingestion — the parallel SBBC ladder
//! (Theorem 4.1) vs the sequential DGIM exponential histogram, and the
//! per-level parallel vs sequential ablation called out in DESIGN.md §5.

mod common;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use psfa::prelude::*;
use psfa_bench::binary_minibatches;

fn bench_basic_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("basic_counting");
    let n = 1u64 << 18;
    let batch = &binary_minibatches(0.3, 1, 16_384, 7)[0];
    for &eps in &[0.1f64, 0.01] {
        let mut warmed = BasicCounter::new(eps, n);
        for bits in binary_minibatches(0.3, 10, 16_384, 8) {
            warmed.advance_bits(&bits);
        }
        group.bench_with_input(
            BenchmarkId::new("parallel_sbbc_ladder", eps),
            &eps,
            |b, _| {
                b.iter_batched(
                    || warmed.clone(),
                    |mut counter| counter.advance_bits(batch),
                    BatchSize::SmallInput,
                )
            },
        );
        let mut dgim = DgimCounter::new(eps, n);
        for bits in binary_minibatches(0.3, 10, 16_384, 8) {
            dgim.update_all(&bits);
        }
        group.bench_with_input(BenchmarkId::new("dgim_sequential", eps), &eps, |b, _| {
            b.iter_batched(
                || dgim.clone(),
                |mut counter| counter.update_all(batch),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_basic_counting
}
criterion_main!(benches);
