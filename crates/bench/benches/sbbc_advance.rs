//! E1 bench: cost of `Sbbc::advance` per minibatch as a function of λ.
//! The paper's bound is `O(min{σ, m/λ} + ‖T‖₀/λ)` — larger λ must be cheaper.

mod common;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use psfa::prelude::*;
use psfa_bench::binary_minibatches;

fn bench_sbbc_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbbc_advance");
    let batch = &binary_minibatches(0.3, 1, 20_000, 1)[0];
    let segment = CompactedSegment::from_bits(batch);
    for &lambda in &[4u64, 32, 256, 2048] {
        // Warm the counter with some history so expiry work is realistic.
        let mut warmed = Sbbc::unbounded(lambda, 200_000);
        for bits in binary_minibatches(0.3, 10, 20_000, 2) {
            warmed.advance(&CompactedSegment::from_bits(&bits));
        }
        group.bench_with_input(BenchmarkId::new("advance_20k", lambda), &lambda, |b, _| {
            b.iter_batched(
                || warmed.clone(),
                |mut sbbc| sbbc.advance(&segment),
                BatchSize::SmallInput,
            )
        });
    }
    group.bench_function("css_construction_20k", |b| {
        b.iter(|| CompactedSegment::from_bits(batch))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_sbbc_advance
}
criterion_main!(benches);
