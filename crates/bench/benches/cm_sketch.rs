//! E6 bench: Count-Min sketch — parallel minibatch ingestion (Theorem 6.1)
//! vs classic per-element updates, plus query cost.

mod common;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use psfa::prelude::*;
use psfa_bench::zipf_minibatches;

fn bench_cm(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_min");
    let batch = &zipf_minibatches(500_000, 1.05, 1, 20_000, 11)[0];
    for &(eps, delta) in &[(1e-3f64, 0.01f64), (1e-4, 0.004)] {
        group.bench_with_input(
            BenchmarkId::new("parallel_minibatch_20k", format!("eps{eps}")),
            &eps,
            |b, _| {
                let warmed = ParallelCountMin::new(eps, delta, 1);
                b.iter_batched(
                    || warmed.clone(),
                    |mut cm| cm.process_minibatch(batch),
                    BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sequential_elements_20k", format!("eps{eps}")),
            &eps,
            |b, _| {
                let warmed = CountMinSketch::new(eps, delta, 1);
                b.iter_batched(
                    || warmed.clone(),
                    |mut cm| {
                        for &x in batch {
                            cm.update(x, 1);
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.bench_function("point_query", |b| {
        let mut cm = ParallelCountMin::new(1e-4, 0.004, 1);
        cm.process_minibatch(batch);
        let mut item = 0u64;
        b.iter(|| {
            item = (item + 1) % 1000;
            cm.query(item)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_cm
}
criterion_main!(benches);
