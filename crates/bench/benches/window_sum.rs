//! E3 bench: windowed-sum minibatch ingestion (Theorem 4.2) as a function of
//! the value bound R — work should scale with log R.

mod common;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use psfa::prelude::*;

fn bench_window_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_sum");
    let n = 1u64 << 16;
    let eps = 0.05;
    for &max_value in &[255u64, 65_535, (1 << 24) - 1] {
        let mut generator = BinaryStreamGenerator::new(0.6, max_value);
        let batch = generator.next_values(8_192, max_value);
        let mut warmed = WindowedSum::new(eps, n, max_value);
        for _ in 0..5 {
            warmed.advance(&generator.next_values(8_192, max_value));
        }
        group.bench_with_input(
            BenchmarkId::new("advance_8k", max_value),
            &max_value,
            |b, _| {
                b.iter_batched(
                    || warmed.clone(),
                    |mut sum| sum.advance(&batch),
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_window_sum
}
criterion_main!(benches);
