//! E10 bench: routing policies under skew — hash partitioning vs skew-aware
//! hot-key splitting, at the router layer (pure partition cost) and through
//! the full engine (ingest + drain on Zipf streams).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psfa::prelude::*;
use psfa_bench::zipf_minibatches;

const BATCHES: usize = 20;
const BATCH_SIZE: usize = 10_000;
const SHARDS: usize = 8;

fn bench_router_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_partition");
    let items = (BATCHES * BATCH_SIZE) as u64;
    group.throughput(Throughput::Elements(items));

    for &alpha in &[1.1f64, 1.5] {
        let batches = zipf_minibatches(100_000, alpha, BATCHES, BATCH_SIZE, 11);
        group.bench_with_input(BenchmarkId::new("hash", alpha), &batches, |b, batches| {
            let router = HashRouter::new(SHARDS);
            b.iter(|| {
                let mut routed = 0usize;
                for batch in batches {
                    routed += router.partition(batch).iter().map(Vec::len).sum::<usize>();
                }
                routed
            })
        });
        group.bench_with_input(
            BenchmarkId::new("skew_aware", alpha),
            &batches,
            |b, batches| {
                b.iter(|| {
                    // Fresh router per iteration so the measured cost includes
                    // online hot-key detection and promotion, not just the
                    // steady state.
                    let router = SkewAwareRouter::new(SHARDS);
                    let mut routed = 0usize;
                    for batch in batches {
                        routed += router.partition(batch).iter().map(Vec::len).sum::<usize>();
                    }
                    routed
                })
            },
        );
    }
    group.finish();
}

fn bench_engine_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_routing");
    let batches = zipf_minibatches(100_000, 1.4, BATCHES, BATCH_SIZE, 23);
    let items = (BATCHES * BATCH_SIZE) as u64;
    group.throughput(Throughput::Elements(items));

    for policy in [RoutingPolicy::Hash, RoutingPolicy::skew_aware()] {
        group.bench_with_input(
            BenchmarkId::new("ingest_drain", policy.name()),
            &policy,
            |b, policy| {
                b.iter(|| {
                    let engine = Engine::spawn(
                        EngineConfig::with_shards(SHARDS)
                            .heavy_hitters(0.01, 0.001)
                            .routing(policy.clone()),
                    );
                    let handle = engine.handle();
                    for batch in &batches {
                        handle.ingest(batch).unwrap();
                    }
                    engine.drain();
                    let hot = handle.metrics().hot_keys.len();
                    engine.shutdown();
                    hot
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_router_partition, bench_engine_routing
}
criterion_main!(benches);
