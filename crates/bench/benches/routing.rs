//! E10 bench: routing policies under skew — hash partitioning vs skew-aware
//! hot-key splitting, at the router layer (pure partition cost) and through
//! the full engine (ingest + drain on Zipf streams).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psfa::prelude::*;
use psfa_bench::zipf_minibatches;

const BATCHES: usize = 20;
const BATCH_SIZE: usize = 10_000;
const SHARDS: usize = 8;

fn bench_router_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_partition");
    let items = (BATCHES * BATCH_SIZE) as u64;
    group.throughput(Throughput::Elements(items));

    for &alpha in &[1.1f64, 1.5] {
        let batches = zipf_minibatches(100_000, alpha, BATCHES, BATCH_SIZE, 11);
        group.bench_with_input(BenchmarkId::new("hash", alpha), &batches, |b, batches| {
            let router = HashRouter::new(SHARDS);
            b.iter(|| {
                let mut routed = 0usize;
                for batch in batches {
                    routed += router.partition(batch).iter().map(Vec::len).sum::<usize>();
                }
                routed
            })
        });
        group.bench_with_input(
            BenchmarkId::new("skew_aware", alpha),
            &batches,
            |b, batches| {
                b.iter(|| {
                    // Fresh router per iteration so the measured cost includes
                    // online hot-key detection and promotion, not just the
                    // steady state.
                    let router = SkewAwareRouter::new(SHARDS);
                    let mut routed = 0usize;
                    for batch in batches {
                        routed += router.partition(batch).iter().map(Vec::len).sum::<usize>();
                    }
                    routed
                })
            },
        );
    }
    group.finish();
}

/// PR 3's hot-path satellite: the per-producer thread-local hot-set cache
/// removes the `RwLock` read + `Arc` clone from the per-batch routing path.
/// Measured in steady state (hot set promoted and sticky, so every batch is
/// a cache hit) on identical pre-warmed routers with the cache on vs off.
fn bench_hot_set_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_hot_set_cache");
    let batches = zipf_minibatches(100_000, 1.5, BATCHES, BATCH_SIZE, 31);
    let items = (BATCHES * BATCH_SIZE) as u64;
    group.throughput(Throughput::Elements(items));

    for cached in [true, false] {
        let router = SkewAwareRouter::new(SHARDS).hot_set_caching(cached);
        // Pre-warm: promote the head keys so the measurement is the steady
        // state, not the detection transient.
        for batch in &batches {
            router.partition(batch);
        }
        assert!(!router.hot_keys().is_empty());
        group.bench_with_input(
            BenchmarkId::new(
                "steady_state_partition",
                if cached { "cached" } else { "uncached" },
            ),
            &router,
            |b, router| {
                b.iter(|| {
                    let mut routed = 0usize;
                    for batch in &batches {
                        routed += router.partition(batch).iter().map(Vec::len).sum::<usize>();
                    }
                    routed
                })
            },
        );
    }

    // The cache's real target is *contended* producers: uncached, every
    // batch takes the shared `RwLock` read plus an `Arc` refcount RMW on
    // one cache line shared by all threads; cached, the hit path performs a
    // single atomic load and no shared-memory writes. The batch set is
    // shared via one `Arc` built up front — cloning the data per iteration
    // would swamp the effect being measured.
    let producers = 4usize;
    let shared_batches = std::sync::Arc::new(batches.clone());
    for cached in [true, false] {
        let router = std::sync::Arc::new(SkewAwareRouter::new(SHARDS).hot_set_caching(cached));
        for batch in shared_batches.iter() {
            router.partition(batch);
        }
        assert!(!router.hot_keys().is_empty());
        group.bench_with_input(
            BenchmarkId::new(
                format!("contended_x{producers}"),
                if cached { "cached" } else { "uncached" },
            ),
            &router,
            |b, router| {
                b.iter(|| {
                    let threads: Vec<_> = (0..producers)
                        .map(|p| {
                            let router = router.clone();
                            let batches = shared_batches.clone();
                            std::thread::spawn(move || {
                                let mut routed = 0usize;
                                for batch in batches.iter().skip(p).step_by(producers) {
                                    routed +=
                                        router.partition(batch).iter().map(Vec::len).sum::<usize>();
                                }
                                routed
                            })
                        })
                        .collect();
                    threads
                        .into_iter()
                        .map(|t| t.join().unwrap())
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

fn bench_engine_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_routing");
    let batches = zipf_minibatches(100_000, 1.4, BATCHES, BATCH_SIZE, 23);
    let items = (BATCHES * BATCH_SIZE) as u64;
    group.throughput(Throughput::Elements(items));

    for policy in [RoutingPolicy::Hash, RoutingPolicy::skew_aware()] {
        group.bench_with_input(
            BenchmarkId::new("ingest_drain", policy.name()),
            &policy,
            |b, policy| {
                b.iter(|| {
                    let engine = Engine::spawn(
                        EngineConfig::with_shards(SHARDS)
                            .heavy_hitters(0.01, 0.001)
                            .routing(policy.clone()),
                    );
                    let handle = engine.handle();
                    for batch in &batches {
                        handle.ingest(batch).unwrap();
                    }
                    engine.drain().unwrap();
                    let hot = handle.metrics().hot_keys.len();
                    engine.shutdown().unwrap();
                    hot
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_router_partition, bench_hot_set_cache, bench_engine_routing
}
criterion_main!(benches);
