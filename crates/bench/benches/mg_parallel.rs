//! E4 bench: infinite-window frequency estimation — the parallel shared
//! Misra–Gries summary (Theorem 5.2) vs the sequential per-element baselines.

mod common;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use psfa::prelude::*;
use psfa_bench::zipf_minibatches;

fn bench_mg(c: &mut Criterion) {
    let mut group = c.benchmark_group("mg_infinite_window");
    let batch = &zipf_minibatches(200_000, 1.2, 1, 20_000, 3)[0];
    for &eps in &[0.01f64, 0.001] {
        group.bench_with_input(BenchmarkId::new("parallel_mg_20k", eps), &eps, |b, _| {
            let mut warmed = ParallelFrequencyEstimator::new(eps);
            for w in zipf_minibatches(200_000, 1.2, 5, 20_000, 4) {
                warmed.process_minibatch(&w);
            }
            b.iter_batched(
                || warmed.clone(),
                |mut est| est.process_minibatch(batch),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("sequential_mg_20k", eps), &eps, |b, _| {
            let mut warmed = SequentialMisraGries::new(eps);
            for w in zipf_minibatches(200_000, 1.2, 5, 20_000, 4) {
                warmed.update_all(&w);
            }
            b.iter_batched(
                || warmed.clone(),
                |mut est| est.update_all(batch),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("space_saving_20k", eps), &eps, |b, _| {
            let mut warmed = SpaceSaving::new(eps);
            for w in zipf_minibatches(200_000, 1.2, 5, 20_000, 4) {
                warmed.update_all(&w);
            }
            b.iter_batched(
                || warmed.clone(),
                |mut est| est.update_all(batch),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_mg
}
criterion_main!(benches);
