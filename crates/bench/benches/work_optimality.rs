//! E8 bench: per-item cost of the infinite-window estimator as the minibatch
//! size µ varies. Corollary 5.11: once µ = Ω(1/ε) the per-item cost is O(1),
//! so the time to process a fixed number of items should flatten.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psfa::prelude::*;
use psfa_bench::zipf_minibatches;

fn bench_work_optimality(c: &mut Criterion) {
    let mut group = c.benchmark_group("work_optimality");
    let eps = 0.001; // 1/ε = 1000
    let total = 100_000usize;
    for &mu in &[100usize, 1_000, 10_000, 100_000] {
        let batches = zipf_minibatches(100_000, 1.1, total / mu, mu, 13);
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(BenchmarkId::new("ingest_100k_items_mu", mu), &mu, |b, _| {
            b.iter(|| {
                let mut est = ParallelFrequencyEstimator::new(eps);
                for batch in &batches {
                    est.process_minibatch(batch);
                }
                est.num_counters()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_work_optimality
}
criterion_main!(benches);
