//! E7 bench: the shared-summary approach vs the independent-data-structure
//! approach of Section 5.4 — both the ingestion path and the query-time merge
//! that the shared approach avoids.

mod common;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use psfa::prelude::*;
use psfa_bench::zipf_minibatches;

fn bench_independent_vs_shared(c: &mut Criterion) {
    let mut group = c.benchmark_group("independent_vs_shared");
    let eps = 0.001;
    let batch = &zipf_minibatches(300_000, 1.1, 1, 20_000, 9)[0];
    let warmup = zipf_minibatches(300_000, 1.1, 10, 20_000, 10);

    group.bench_function("shared_ingest_20k", |b| {
        let mut warmed = ParallelFrequencyEstimator::new(eps);
        for w in &warmup {
            warmed.process_minibatch(w);
        }
        b.iter_batched(
            || warmed.clone(),
            |mut est| est.process_minibatch(batch),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("shared_query", |b| {
        let mut warmed = ParallelFrequencyEstimator::new(eps);
        for w in &warmup {
            warmed.process_minibatch(w);
        }
        b.iter(|| warmed.heavy_hitters(0.01))
    });

    for &p in &[4usize, 16] {
        let mut warmed = IndependentMgSummaries::new(eps, p);
        for w in &warmup {
            warmed.process_minibatch(w);
        }
        group.bench_with_input(BenchmarkId::new("independent_ingest_20k", p), &p, |b, _| {
            b.iter_batched(
                || warmed.clone(),
                |mut est| est.process_minibatch(batch),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(
            BenchmarkId::new("independent_merge_query", p),
            &p,
            |b, _| b.iter(|| warmed.merged()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_independent_vs_shared
}
criterion_main!(benches);
