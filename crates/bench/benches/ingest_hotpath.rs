//! E13 bench: the shard ingest hot path — the seed per-batch worker loop
//! (allocating double-histogram, mutex'd Count-Min, eager `RwLock`
//! snapshot clone) against the PR 5 rebuild (scratch-reused histogram,
//! relaxed-atomic Count-Min, lazy `ArcCell` publication), plus the real
//! engine end to end, and an allocations-per-batch audit via the counting
//! allocator shim.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psfa::prelude::*;
use psfa_bench::hotpath::{drive_shards, pre_split, HotPathParams, HotShardLoop, LegacyShardLoop};
use psfa_bench::{alloc_counter, zipf_minibatches};

/// Counting shim so the `allocations` group can report per-batch counts.
#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

const BATCHES: usize = 24;
const BATCH_SIZE: usize = 20_000;

fn bench_worker_loops(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_hotpath_loops");
    let batches = zipf_minibatches(100_000, 1.5, BATCHES, BATCH_SIZE, 61);
    let items = (BATCHES * BATCH_SIZE) as u64;
    group.throughput(Throughput::Elements(items));
    let params = HotPathParams::default();

    for &shards in &[1usize, 4] {
        let split = pre_split(&batches, shards);
        group.bench_with_input(BenchmarkId::new("seed", shards), &split, |b, split| {
            b.iter(|| {
                drive_shards(
                    split,
                    |s| LegacyShardLoop::new(s, params),
                    |l, batch| l.ingest(batch),
                    |l| l.finish(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("rebuilt", shards), &split, |b, split| {
            b.iter(|| {
                drive_shards(
                    split,
                    |s| HotShardLoop::new(s, params),
                    |l, batch| l.ingest(batch),
                    |l| l.finish(),
                )
            })
        });
    }
    group.finish();
}

fn bench_engine_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_hotpath_engine");
    let batches = zipf_minibatches(100_000, 1.5, BATCHES, BATCH_SIZE, 61);
    let items = (BATCHES * BATCH_SIZE) as u64;
    group.throughput(Throughput::Elements(items));

    for &shards in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("ingest_drain", shards),
            &batches,
            |b, batches| {
                b.iter(|| {
                    let engine =
                        Engine::spawn(EngineConfig::with_shards(shards).heavy_hitters(0.01, 0.001));
                    let handle = engine.handle();
                    for batch in batches {
                        handle.ingest(batch).expect("engine closed");
                    }
                    engine.drain().unwrap();
                    let total = handle.total_items();
                    engine.shutdown().unwrap();
                    total
                })
            },
        );
    }
    group.finish();
}

/// Not a timing group: prints allocations per batch for both loops, the
/// number E13 tracks (the rebuilt loop's residue is the MG summary's
/// occasional growth; the recycled routing+histogram sub-path is exactly
/// zero, asserted by `reproduce --exp e13`).
fn report_allocations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_hotpath_allocs");
    let batches = zipf_minibatches(100_000, 1.5, BATCHES, BATCH_SIZE, 61);
    let params = HotPathParams::default();
    for (name, allocs) in [
        ("seed", {
            let mut state = LegacyShardLoop::new(0, params);
            let before = alloc_counter::allocations();
            for batch in &batches {
                state.ingest(batch);
            }
            alloc_counter::allocations() - before
        }),
        ("rebuilt", {
            let mut state = HotShardLoop::new(0, params);
            let before = alloc_counter::allocations();
            for batch in &batches {
                state.ingest(batch);
            }
            alloc_counter::allocations() - before
        }),
    ] {
        println!(
            "ingest_hotpath_allocs/{name}: {:.1} allocations per batch",
            allocs as f64 / BATCHES as f64
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_worker_loops, bench_engine_ingest, report_allocations
}
criterion_main!(benches);
