//! Compacted stream segments (CSS), Lemma 2.1.
//!
//! A CSS encodes a segment of a binary stream by recording only the segment
//! length and the positions of its 1 bits. The paper uses CSSs as the wire
//! format between the minibatch front-end and the space-bounded block
//! counters: `advance` (Theorem 3.4) consumes a CSS, and `sift` (Lemma 5.9)
//! produces one CSS per surviving item.
//!
//! Positions are 0-indexed within the segment; converting to absolute stream
//! positions is the consumer's responsibility (the SBBC keeps the running
//! stream length `t`).

use rayon::prelude::*;

use crate::pack::pack_indices;

/// A compacted encoding of a binary stream segment: the segment length plus
/// the ordered positions of its 1 bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactedSegment {
    len: u64,
    ones: Vec<u64>,
}

impl CompactedSegment {
    /// A segment of `len` zeros.
    pub fn zeros(len: u64) -> Self {
        Self {
            len,
            ones: Vec::new(),
        }
    }

    /// Builds a CSS from an explicit bit vector in `O(n)` work and
    /// polylogarithmic depth (Lemma 2.1).
    pub fn from_bits(bits: &[bool]) -> Self {
        let ones = pack_indices(bits)
            .into_par_iter()
            .map(|i| i as u64)
            .collect();
        Self {
            len: bits.len() as u64,
            ones,
        }
    }

    /// Builds the CSS of the indicator sequence `1{pred(item)}` over `items`.
    ///
    /// This is how the frequency-estimation algorithms derive the per-item
    /// binary stream `1{T_j = e}` from a minibatch `T` (Section 5.3.1).
    pub fn from_predicate<T: Sync>(items: &[T], pred: impl Fn(&T) -> bool + Send + Sync) -> Self {
        let flags: Vec<bool> = items.par_iter().map(pred).collect();
        let ones = pack_indices(&flags)
            .into_par_iter()
            .map(|i| i as u64)
            .collect();
        Self {
            len: items.len() as u64,
            ones,
        }
    }

    /// Builds a CSS from pre-computed 1-bit positions.
    ///
    /// # Panics
    /// Panics if the positions are not strictly increasing or any position is
    /// `>= len`.
    pub fn from_positions(len: u64, ones: Vec<u64>) -> Self {
        for w in ones.windows(2) {
            assert!(w[0] < w[1], "CSS positions must be strictly increasing");
        }
        if let Some(&last) = ones.last() {
            assert!(
                last < len,
                "CSS position {last} out of bounds for length {len}"
            );
        }
        Self { len, ones }
    }

    /// Length of the underlying segment (number of bits, not number of ones).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the segment has length zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 1 bits in the segment (`‖T‖₀` in the paper).
    pub fn count_ones(&self) -> u64 {
        self.ones.len() as u64
    }

    /// The ordered positions (0-indexed, within the segment) of the 1 bits.
    pub fn positions(&self) -> &[u64] {
        &self.ones
    }

    /// Expands the CSS back into an explicit bit vector (testing helper).
    pub fn to_bits(&self) -> Vec<bool> {
        let mut bits = vec![false; self.len as usize];
        for &p in &self.ones {
            bits[p as usize] = true;
        }
        bits
    }

    /// Concatenates two segments: `self` followed by `other`.
    pub fn concat(&self, other: &CompactedSegment) -> CompactedSegment {
        let mut ones = Vec::with_capacity(self.ones.len() + other.ones.len());
        ones.extend_from_slice(&self.ones);
        ones.extend(other.ones.iter().map(|&p| p + self.len));
        CompactedSegment {
            len: self.len + other.len,
            ones,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_ones() {
        let css = CompactedSegment::zeros(100);
        assert_eq!(css.len(), 100);
        assert_eq!(css.count_ones(), 0);
        assert!(css.positions().is_empty());
    }

    #[test]
    fn from_bits_roundtrip_small() {
        let bits = vec![false, true, true, false, true, false];
        let css = CompactedSegment::from_bits(&bits);
        assert_eq!(css.len(), 6);
        assert_eq!(css.positions(), &[1, 2, 4]);
        assert_eq!(css.to_bits(), bits);
    }

    #[test]
    fn from_bits_roundtrip_large() {
        let bits: Vec<bool> = (0..50_000).map(|i| (i * 31) % 7 == 0).collect();
        let css = CompactedSegment::from_bits(&bits);
        assert_eq!(css.to_bits(), bits);
        assert_eq!(
            css.count_ones() as usize,
            bits.iter().filter(|&&b| b).count()
        );
    }

    #[test]
    fn from_predicate_matches_manual_indicator() {
        let items: Vec<u32> = (0..10_000).map(|i| i % 5).collect();
        let css = CompactedSegment::from_predicate(&items, |&x| x == 3);
        let manual: Vec<u64> = items
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| if x == 3 { Some(i as u64) } else { None })
            .collect();
        assert_eq!(css.positions(), manual.as_slice());
        assert_eq!(css.len(), 10_000);
    }

    #[test]
    fn from_positions_validates() {
        let css = CompactedSegment::from_positions(10, vec![0, 3, 9]);
        assert_eq!(css.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_positions_rejects_unsorted() {
        let _ = CompactedSegment::from_positions(10, vec![3, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_positions_rejects_out_of_bounds() {
        let _ = CompactedSegment::from_positions(10, vec![3, 10]);
    }

    #[test]
    fn concat_shifts_positions() {
        let a = CompactedSegment::from_positions(4, vec![1, 3]);
        let b = CompactedSegment::from_positions(3, vec![0]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 7);
        assert_eq!(c.positions(), &[1, 3, 4]);
    }

    #[test]
    fn empty_segment() {
        let css = CompactedSegment::from_bits(&[]);
        assert!(css.is_empty());
        assert_eq!(css.count_ones(), 0);
        let other = CompactedSegment::from_positions(5, vec![2]);
        assert_eq!(css.concat(&other), other);
    }
}
