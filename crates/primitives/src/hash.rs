//! Seeded hash families.
//!
//! Two constructions are provided:
//!
//! * [`MultiplyShiftHash`] — the classic multiply–shift scheme mapping 64-bit
//!   keys into a power-of-two range. It is 2-universal, cheap, and is what
//!   the Count-Min sketch rows (Section 6) use, matching the paper's
//!   requirement of a pairwise-independent family.
//! * [`PolynomialHash`] — degree-(k−1) polynomial hashing over the Mersenne
//!   prime `2^61 − 1`, giving a k-wise independent family. `buildHist`
//!   (Theorem 2.3) asks for an `O(log µ)`-wise independent family so that the
//!   balls-and-bins argument bounding the per-bucket distinct count goes
//!   through; we use `k = 8` by default which is enough for every minibatch
//!   size exercised in the experiments.
//!
//! Both families are deterministic functions of their seed, so experiments
//! are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The Mersenne prime `2^61 − 1` used for polynomial hashing.
pub const MERSENNE_61: u64 = (1 << 61) - 1;

/// A seeded hash function from `u64` keys to a bounded range.
pub trait HashFamily: Send + Sync {
    /// Hashes `key` into `0..self.range()`.
    fn hash(&self, key: u64) -> u64;

    /// Exclusive upper bound of the hash output.
    fn range(&self) -> u64;
}

/// 2-universal multiply–shift hashing into a power-of-two range.
#[derive(Debug, Clone)]
pub struct MultiplyShiftHash {
    a: u64,
    b: u64,
    out_bits: u32,
}

impl MultiplyShiftHash {
    /// Creates a hash function into `0..2^out_bits` seeded from `rng`.
    ///
    /// # Panics
    /// Panics if `out_bits` is 0 or greater than 63.
    pub fn new<R: RngCore>(out_bits: u32, rng: &mut R) -> Self {
        assert!(
            (1..=63).contains(&out_bits),
            "MultiplyShiftHash: out_bits must be in 1..=63"
        );
        // `a` must be odd for the multiply-shift family.
        let a = rng.next_u64() | 1;
        let b = rng.next_u64();
        Self { a, b, out_bits }
    }

    /// Creates a hash function into the smallest power of two `>= range`.
    pub fn for_range<R: RngCore>(range: u64, rng: &mut R) -> Self {
        let bits = 64 - range.max(2).saturating_sub(1).leading_zeros();
        Self::new(bits.max(1), rng)
    }

    /// Creates a deterministic instance from an integer seed.
    pub fn from_seed(out_bits: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::new(out_bits, &mut rng)
    }
}

impl HashFamily for MultiplyShiftHash {
    fn hash(&self, key: u64) -> u64 {
        self.a
            .wrapping_mul(key)
            .wrapping_add(self.b)
            .wrapping_shr(64 - self.out_bits)
    }

    fn range(&self) -> u64 {
        1u64 << self.out_bits
    }
}

/// k-wise independent polynomial hashing over the Mersenne prime `2^61 − 1`,
/// reduced into an arbitrary range.
#[derive(Debug, Clone)]
pub struct PolynomialHash {
    /// Polynomial coefficients, constant term last; degree = k − 1.
    coeffs: Vec<u64>,
    range: u64,
}

impl PolynomialHash {
    /// Creates a `k`-wise independent hash function into `0..range`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `range == 0`.
    pub fn new<R: RngCore>(k: usize, range: u64, rng: &mut R) -> Self {
        assert!(k >= 1, "PolynomialHash: k must be at least 1");
        assert!(range >= 1, "PolynomialHash: range must be at least 1");
        let coeffs = (0..k).map(|_| rng.gen_range(0..MERSENNE_61)).collect();
        Self { coeffs, range }
    }

    /// Creates a deterministic instance from an integer seed.
    pub fn from_seed(k: usize, range: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::new(k, range, &mut rng)
    }

    /// Re-derives this instance in place, exactly as
    /// [`PolynomialHash::from_seed`] with the same arguments would, reusing
    /// the coefficient buffer — allocation-free once its capacity reaches
    /// `k`. For per-batch reseeding on hot paths (`build_hist_into`).
    ///
    /// # Panics
    /// Panics if `k == 0` or `range == 0`.
    pub fn reseed(&mut self, k: usize, range: u64, seed: u64) {
        assert!(k >= 1, "PolynomialHash: k must be at least 1");
        assert!(range >= 1, "PolynomialHash: range must be at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        self.coeffs.clear();
        self.coeffs
            .extend((0..k).map(|_| rng.gen_range(0..MERSENNE_61)));
        self.range = range;
    }

    /// Default family used by `buildHist`: 8-wise independence.
    pub fn for_histogram<R: RngCore>(range: u64, rng: &mut R) -> Self {
        Self::new(8, range, rng)
    }
}

/// Multiplication modulo the Mersenne prime `2^61 − 1` without overflow.
fn mul_mod_m61(a: u64, b: u64) -> u64 {
    let prod = (a as u128) * (b as u128);
    let lo = (prod & MERSENNE_61 as u128) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_61 {
        s -= MERSENNE_61;
    }
    s
}

impl HashFamily for PolynomialHash {
    fn hash(&self, key: u64) -> u64 {
        let x = key % MERSENNE_61;
        let mut acc = 0u64;
        // Horner evaluation of the degree-(k-1) polynomial.
        for &c in &self.coeffs {
            acc = mul_mod_m61(acc, x);
            acc += c;
            if acc >= MERSENNE_61 {
                acc -= MERSENNE_61;
            }
        }
        acc % self.range
    }

    fn range(&self) -> u64 {
        self.range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_shift_in_range() {
        let h = MultiplyShiftHash::from_seed(10, 42);
        assert_eq!(h.range(), 1024);
        for key in 0..10_000u64 {
            assert!(h.hash(key) < 1024);
        }
    }

    #[test]
    fn multiply_shift_for_range_covers_requested_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = MultiplyShiftHash::for_range(1000, &mut rng);
        assert!(h.range() >= 1000);
        assert!(h.range() <= 2048);
    }

    #[test]
    fn multiply_shift_is_deterministic_per_seed() {
        let h1 = MultiplyShiftHash::from_seed(16, 7);
        let h2 = MultiplyShiftHash::from_seed(16, 7);
        let h3 = MultiplyShiftHash::from_seed(16, 8);
        assert_eq!(h1.hash(12345), h2.hash(12345));
        // Different seeds should (overwhelmingly likely) differ somewhere.
        assert!((0..100).any(|k| h1.hash(k) != h3.hash(k)));
    }

    #[test]
    fn polynomial_in_range_and_deterministic() {
        let h = PolynomialHash::from_seed(8, 977, 3);
        let h2 = PolynomialHash::from_seed(8, 977, 3);
        for key in (0..100_000u64).step_by(97) {
            let v = h.hash(key);
            assert!(v < 977);
            assert_eq!(v, h2.hash(key));
        }
    }

    #[test]
    fn polynomial_spreads_keys_roughly_uniformly() {
        let range = 128u64;
        let h = PolynomialHash::from_seed(8, range, 11);
        let mut buckets = vec![0u32; range as usize];
        let keys = 64_000u64;
        for key in 0..keys {
            buckets[h.hash(key) as usize] += 1;
        }
        let expected = keys / range;
        for (i, &c) in buckets.iter().enumerate() {
            assert!(
                (c as u64) > expected / 4 && (c as u64) < expected * 4,
                "bucket {i} wildly unbalanced: {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn mul_mod_m61_matches_u128_reference() {
        let cases = [
            (0u64, 0u64),
            (1, MERSENNE_61 - 1),
            (MERSENNE_61 - 1, MERSENNE_61 - 1),
            (123456789, 987654321),
            (1 << 60, (1 << 60) + 12345),
        ];
        for &(a, b) in &cases {
            let want = ((a as u128 * b as u128) % MERSENNE_61 as u128) as u64;
            assert_eq!(mul_mod_m61(a, b), want, "a={a} b={b}");
        }
    }

    #[test]
    #[should_panic(expected = "out_bits")]
    fn multiply_shift_rejects_zero_bits() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = MultiplyShiftHash::new(0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn polynomial_rejects_zero_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = PolynomialHash::new(4, 0, &mut rng);
    }
}
