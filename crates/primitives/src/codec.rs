//! Canonical binary encoding substrate for the persistence layer.
//!
//! Every summary type in the workspace (`MgSummary`, `CountMinSketch`, the
//! sliding-window counters, …) exposes a canonical `encode`/`decode` pair
//! built on the little-endian [`ByteWriter`]/[`ByteReader`] helpers here.
//! The design goals, in order:
//!
//! 1. **Never panic on untrusted bytes.** `decode` must return a typed
//!    [`CodecError`] for truncated or corrupted input; length-prefixed
//!    collections are validated against the bytes actually remaining before
//!    anything is allocated, so a corrupted length field cannot trigger an
//!    out-of-memory abort.
//! 2. **Determinism.** Encoding the same logical state twice produces
//!    identical bytes (hash-map contents are sorted before writing), so
//!    byte-level comparison and checksumming are meaningful.
//! 3. **Self-description.** Every top-level type writes a one-byte tag and a
//!    one-byte version, so a reader pointed at the wrong blob fails with
//!    [`CodecError::BadTag`] instead of misinterpreting counters.
//!
//! Checksums and file framing are *not* handled here — that is the segment
//! log's job (`psfa-store`); this module is only about turning one summary
//! into bytes and back.

use std::fmt;

/// Typed decoding failure. Carried upward by `psfa-store` as the `Codec`
/// variant of its `StoreError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a fixed-width field or payload could be read.
    UnexpectedEof {
        /// Bytes the reader needed.
        needed: usize,
        /// Bytes that were actually remaining.
        remaining: usize,
    },
    /// The leading type tag did not match the expected summary type.
    BadTag {
        /// Tag the decoder expected.
        expected: u8,
        /// Tag found in the input.
        found: u8,
    },
    /// The encoding version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the input.
        found: u8,
    },
    /// A decoded field failed a structural validity check.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            CodecError::BadTag { expected, found } => {
                write!(
                    f,
                    "bad type tag: expected {expected:#04x}, found {found:#04x}"
                )
            }
            CodecError::UnsupportedVersion { found } => {
                write!(f, "unsupported encoding version {found}")
            }
            CodecError::Invalid(what) => write!(f, "invalid encoded state: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Little-endian append-only byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with a `u32` length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        debug_assert!(bytes.len() <= u32::MAX as usize);
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }
}

/// Little-endian cursor over an encoded byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u32`-length-prefixed byte run.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32` collection length and validates it against the bytes
    /// remaining (each element occupying at least `min_elem_bytes`), so a
    /// corrupted length cannot drive a huge allocation.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.get_u32()? as usize;
        let needed = len.saturating_mul(min_elem_bytes.max(1));
        if needed > self.remaining() {
            return Err(CodecError::UnexpectedEof {
                needed,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads and checks a type tag followed by a version byte; returns the
    /// version if it is `<= max_version`.
    pub fn expect_header(&mut self, tag: u8, max_version: u8) -> Result<u8, CodecError> {
        let found = self.get_u8()?;
        if found != tag {
            return Err(CodecError::BadTag {
                expected: tag,
                found,
            });
        }
        let version = self.get_u8()?;
        if version > max_version {
            return Err(CodecError::UnsupportedVersion { found: version });
        }
        Ok(version)
    }

    /// Errors unless every byte has been consumed — catches trailing
    /// garbage after a top-level decode.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::Invalid("trailing bytes after encoded value"));
        }
        Ok(())
    }
}

/// Writes a type tag and version byte (the counterpart of
/// [`ByteReader::expect_header`]).
pub fn put_header(w: &mut ByteWriter, tag: u8, version: u8) {
    w.put_u8(tag);
    w.put_u8(version);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = ByteWriter::new();
        put_header(&mut w, 0x42, 1);
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(0.125);
        w.put_bytes(b"hello");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.expect_header(0x42, 1).unwrap(), 1);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), 0.125);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.put_u64(99);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(
            r.get_u64(),
            Err(CodecError::UnexpectedEof {
                needed: 8,
                remaining: 5
            })
        ));
    }

    #[test]
    fn bad_tag_and_version_are_rejected() {
        let mut w = ByteWriter::new();
        put_header(&mut w, 0x01, 9);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.expect_header(0x02, 9),
            Err(CodecError::BadTag {
                expected: 0x02,
                found: 0x01
            })
        ));
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.expect_header(0x01, 8),
            Err(CodecError::UnsupportedVersion { found: 9 })
        ));
    }

    #[test]
    fn corrupted_length_cannot_demand_absurd_allocations() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // claims 4 billion elements
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_len(16),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        r.get_u8().unwrap();
        assert!(matches!(r.expect_end(), Err(CodecError::Invalid(_))));
    }
}
