//! Parallel rank selection.
//!
//! The Misra–Gries augmentation step (Lemma 5.3) and the pruning step of the
//! sliding-window algorithm (Algorithm 2, step 3a) both need to find a cut-off
//! value `ϕ` such that at most `S` counters have value `≥ ϕ`. That is a rank
//! selection problem. The paper suggests "a variant of quickselect"; we
//! implement a parallel quickselect whose partition step is a parallel pack,
//! giving expected `O(n)` work and `O(polylog n)` depth.

use rayon::prelude::*;

use crate::SEQ_THRESHOLD;

/// Returns the `k`-th smallest value of `values` (0-indexed: `k = 0` is the
/// minimum).
///
/// Expected `O(n)` work; the recursion depth is `O(log n)` with high
/// probability because the pivot is a median-of-three of evenly spaced
/// samples.
///
/// # Panics
/// Panics if `values` is empty or `k >= values.len()`.
pub fn kth_smallest(values: &[u64], k: usize) -> u64 {
    assert!(!values.is_empty(), "kth_smallest: empty input");
    assert!(
        k < values.len(),
        "kth_smallest: rank {k} out of bounds for length {}",
        values.len()
    );
    let mut current: Vec<u64> = values.to_vec();
    let mut rank = k;
    loop {
        let n = current.len();
        if n <= SEQ_THRESHOLD {
            current.sort_unstable();
            return current[rank];
        }
        let pivot = median_of_three(&current);
        // Three-way partition via parallel counting + packing.
        let less: Vec<u64> = current.par_iter().copied().filter(|&x| x < pivot).collect();
        let equal = current.par_iter().filter(|&&x| x == pivot).count();
        if rank < less.len() {
            current = less;
        } else if rank < less.len() + equal {
            return pivot;
        } else {
            rank -= less.len() + equal;
            current = current.par_iter().copied().filter(|&x| x > pivot).collect();
        }
    }
}

/// Computes the pruning cut-off `ϕ` of Lemma 5.3 / Algorithm 2: the smallest
/// value such that **at most `s`** entries of `values` are strictly greater
/// than `ϕ`, while (whenever `ϕ > 0`) **at least `s`** entries are `≥ ϕ`.
///
/// Concretely this is the `(s+1)`-th largest value, or `0` when there are at
/// most `s` values. Subtracting `ϕ` from every value and keeping the strictly
/// positive ones therefore leaves at most `s` survivors, and every one of the
/// `ϕ` conceptual decrement batches touches at least `s` distinct counters —
/// exactly the property the accuracy proofs of Lemma 5.3 and Claim 5.7 need.
pub fn phi_cutoff(values: &[u64], s: usize) -> u64 {
    if values.len() <= s {
        return 0;
    }
    // (s+1)-th largest == (len - s - 1)-th smallest (0-indexed).
    kth_smallest(values, values.len() - s - 1)
}

/// Allocation-free variant of [`phi_cutoff`] for callers that own a
/// reusable scratch buffer: selects in place (reordering `values`) via
/// introselect instead of copying into fresh partition vectors.
///
/// The parallel [`phi_cutoff`] pays `O(n)` transient allocations per call
/// for its packed partitions — fine for the query path, but the per-batch
/// Misra–Gries augment sits on the engine's ingest hot path, whose
/// steady-state zero-allocation contract E13 audits with a counting
/// allocator. Same result, same `O(n)` expected work, sequential depth.
pub fn phi_cutoff_in_place(values: &mut [u64], s: usize) -> u64 {
    if values.len() <= s {
        return 0;
    }
    let k = values.len() - s - 1;
    *values.select_nth_unstable(k).1
}

/// Median of three evenly spaced elements — a cheap, deterministic pivot that
/// avoids quadratic behaviour on sorted inputs.
fn median_of_three(values: &[u64]) -> u64 {
    let n = values.len();
    let a = values[0];
    let b = values[n / 2];
    let c = values[n - 1];
    a.max(b).min(a.min(b).max(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kth_on_small_input() {
        let v = vec![5u64, 1, 4, 2, 3];
        for k in 0..5 {
            assert_eq!(kth_smallest(&v, k), (k as u64) + 1);
        }
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn kth_empty_panics() {
        let _ = kth_smallest(&[], 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn kth_rank_out_of_bounds_panics() {
        let _ = kth_smallest(&[1, 2, 3], 3);
    }

    #[test]
    fn kth_on_large_input_matches_sort() {
        let n = 50_000usize;
        let v: Vec<u64> = (0..n as u64).map(|i| (i * 48271) % 10_007).collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        for &k in &[0usize, 1, n / 3, n / 2, n - 2, n - 1] {
            assert_eq!(kth_smallest(&v, k), sorted[k]);
        }
    }

    #[test]
    fn kth_with_many_duplicates() {
        let v: Vec<u64> = (0..30_000u64).map(|i| i % 3).collect();
        assert_eq!(kth_smallest(&v, 0), 0);
        assert_eq!(kth_smallest(&v, 15_000), 1);
        assert_eq!(kth_smallest(&v, 29_999), 2);
    }

    #[test]
    fn phi_zero_when_few_values() {
        assert_eq!(phi_cutoff(&[10, 20, 30], 3), 0);
        assert_eq!(phi_cutoff(&[10, 20, 30], 5), 0);
        assert_eq!(phi_cutoff(&[], 0), 0);
    }

    #[test]
    fn phi_basic_property() {
        // values 1..=10, s = 3 => phi is the 4th largest = 7.
        let v: Vec<u64> = (1..=10).collect();
        let phi = phi_cutoff(&v, 3);
        assert_eq!(phi, 7);
        let survivors = v.iter().filter(|&&x| x > phi).count();
        assert!(survivors <= 3);
        let at_least = v.iter().filter(|&&x| x >= phi).count();
        assert!(at_least >= 3);
    }

    #[test]
    fn phi_property_holds_on_random_inputs() {
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for trial in 0..20 {
            let n = 500 + (trial * 137) % 3000;
            let values: Vec<u64> = (0..n).map(|_| next() % 1000).collect();
            let s = 1 + (trial as usize * 7) % 50;
            let phi = phi_cutoff(&values, s);
            let survivors = values.iter().filter(|&&x| x > phi).count();
            assert!(
                survivors <= s,
                "trial {trial}: {survivors} survivors > s = {s} (phi = {phi})"
            );
            if phi > 0 {
                let at_least = values.iter().filter(|&&x| x >= phi).count();
                assert!(at_least >= s, "trial {trial}: batches touch < s counters");
            }
        }
    }
}
