//! # psfa-primitives
//!
//! Work/depth parallel-primitives substrate used by the PSFA (Parallel
//! Streaming Frequency-based Aggregates) reproduction of Tangwongsan,
//! Tirthapura and Wu, *Parallel Streaming Frequency-Based Aggregates*,
//! SPAA 2014.
//!
//! The paper states its algorithms in the classic work/depth model on a
//! CRCW PRAM and relies on a handful of textbook parallel primitives
//! (JáJá-style). This crate provides shared-memory realisations of those
//! primitives on top of [`rayon`]'s fork–join scheduler:
//!
//! * [`scan`] — parallel prefix sums (exclusive and inclusive) over an
//!   arbitrary associative operator.
//! * [`mod@pack`] — parallel filtering/compaction of sequences and flag vectors.
//! * [`intsort`] — stable linear-work parallel counting sort for bounded
//!   integer keys (the `intSort` of Theorem 2.2, after Rajasekaran–Reif).
//! * [`select`] — expected linear-work parallel rank selection, used to
//!   compute the pruning cut-off `ϕ` of Lemma 5.3 / Algorithm 2.
//! * [`histogram`] — the linear-work histogram `buildHist` of Theorem 2.3,
//!   plus a fold/reduce hash-map variant used for ablation.
//! * [`css`] — compacted stream segments (CSS) of Lemma 2.1: an encoding of
//!   a binary stream segment that records only the positions of the 1 bits.
//! * [`hash`] — seeded pairwise- and k-wise-independent hash families used
//!   by `buildHist` and the Count-Min sketch.
//! * [`instrument`] — lightweight operation counters used by the
//!   work-efficiency experiments (E8) to measure *work* independently of
//!   wall-clock time.
//! * [`codec`] — the little-endian byte reader/writer and typed error used
//!   by every summary's canonical `encode`/`decode` pair (the persistence
//!   substrate of `psfa-store`).
//! * [`arc_cell`] — atomic-pointer publication of shared immutable values
//!   (`ArcCell`), the lock-free snapshot slot under the engine's query
//!   surface.
//! * [`fault`] — the deterministic fault-injection plane (`FaultPlan`):
//!   seedable typed fault points consulted by the engine, persister, and
//!   serving layer, compiled to a no-op when unset.
//!
//! All primitives perform `O(n)` work and have polylogarithmic span, so the
//! cost bounds proved in the paper carry over to the data structures built
//! on top of them in the companion crates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arc_cell;
pub mod codec;
pub mod css;
pub mod fault;
pub mod hash;
pub mod histogram;
pub mod instrument;
pub mod intsort;
pub mod pack;
pub mod scan;
pub mod select;

pub use arc_cell::ArcCell;
pub use codec::{put_header, ByteReader, ByteWriter, CodecError};
pub use css::CompactedSegment;
pub use fault::FaultPlan;
pub use hash::{HashFamily, MultiplyShiftHash, PolynomialHash};
pub use histogram::{build_hist, build_hist_hashmap, build_hist_into, HistScratch, HistogramEntry};
pub use instrument::WorkMeter;
pub use intsort::{int_sort_by_key, int_sort_pairs};
pub use pack::{pack, pack_indices, pack_map};
pub use scan::{scan_exclusive, scan_exclusive_by, scan_inclusive, scan_inclusive_by};
pub use select::{kth_smallest, phi_cutoff, phi_cutoff_in_place};

/// Default granularity below which primitives fall back to sequential code.
///
/// Chosen so that per-task scheduling overhead is negligible compared to the
/// work done inside the task; the exact value only affects constants, not the
/// asymptotic work/depth bounds.
pub const SEQ_THRESHOLD: usize = 2048;

/// Returns the number of chunks to split an input of length `n` into for
/// blocked parallel primitives.
///
/// The count grows with the rayon thread pool size so that work stealing has
/// enough slack, but is capped so per-chunk bookkeeping stays `O(P log n)`.
pub fn num_chunks(n: usize) -> usize {
    if n <= SEQ_THRESHOLD {
        return 1;
    }
    let threads = rayon::current_num_threads().max(1);
    let target = threads * 8;
    target.min(n.div_ceil(SEQ_THRESHOLD)).max(1)
}

/// Returns the chunk length used when splitting an input of length `n` into
/// [`num_chunks`] pieces (the last chunk may be shorter).
pub fn chunk_len(n: usize) -> usize {
    n.div_ceil(num_chunks(n)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_covers_input() {
        for n in [1usize, 10, 2047, 2048, 2049, 100_000] {
            let c = chunk_len(n);
            assert!(c >= 1);
            assert!(c * num_chunks(n) >= n, "chunks must cover the input");
        }
    }

    #[test]
    fn single_chunk_for_small_inputs() {
        assert_eq!(num_chunks(10), 1);
        assert_eq!(num_chunks(SEQ_THRESHOLD), 1);
    }
}
