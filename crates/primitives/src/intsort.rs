//! Stable linear-work parallel integer sorting (`intSort`, Theorem 2.2).
//!
//! The paper invokes the Rajasekaran–Reif result: keys in `{0, …, c·n}` can be
//! sorted with `O(n)` work and polylogarithmic depth. On a shared-memory
//! machine we realise this with a blocked least-significant-digit radix sort:
//! each pass is a stable parallel counting sort over a fixed number of digit
//! buckets, so the number of passes is constant for keys bounded by a
//! polynomial in `n` and the total work is `O(n)`.
//!
//! The implementation is allocation-conscious but entirely safe: the scatter
//! phase hands every (block, digit) pair its own disjoint `&mut` window of the
//! output obtained by sequentially splitting the output buffer, so no atomics
//! or unsafe writes are needed.

use rayon::prelude::*;

use crate::{num_chunks, SEQ_THRESHOLD};

/// Number of bits handled per counting-sort pass.
const DIGIT_BITS: u32 = 12;

/// Returns a stable permutation of `0..keys.len()` that sorts `keys`
/// non-decreasingly.
///
/// `range` is an exclusive upper bound on the key values; keys `>= range`
/// cause a panic. The work is `O(n)` for `range = O(n^c)` with constant `c`.
///
/// # Panics
/// Panics if any key is `>= range` or if `keys.len() >= u32::MAX as usize`.
pub fn sort_indices_by_key(keys: &[u64], range: u64) -> Vec<u32> {
    assert!(
        keys.len() < u32::MAX as usize,
        "intsort: inputs longer than u32::MAX are not supported"
    );
    if let Some(&bad) = keys.iter().find(|&&k| k >= range) {
        panic!("intsort: key {bad} out of range (range = {range})");
    }
    let n = keys.len();
    if n == 0 {
        return Vec::new();
    }
    let mut pairs: Vec<(u64, u32)> = keys
        .par_iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u32))
        .collect();

    let key_bits = 64 - range.saturating_sub(1).leading_zeros();
    let key_bits = key_bits.max(1);
    let mut shift = 0u32;
    while shift < key_bits {
        counting_sort_pass(&mut pairs, shift);
        shift += DIGIT_BITS;
    }
    pairs.into_par_iter().map(|(_, i)| i).collect()
}

/// Sorts `items` stably by an integer key in `0..range` using `O(n)` work.
///
/// This is the `intSort` primitive of Theorem 2.2 specialised to the way the
/// paper uses it: grouping stream elements by a hash value (Theorem 2.3) or by
/// item identifier within a minibatch (Section 5.3.1).
pub fn int_sort_by_key<T, F>(items: &[T], range: u64, key: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync,
{
    let keys: Vec<u64> = items.par_iter().map(key).collect();
    let perm = sort_indices_by_key(&keys, range);
    perm.par_iter()
        .map(|&i| items[i as usize].clone())
        .collect()
}

/// Sorts `(key, value)` pairs stably by key in `0..range` using `O(n)` work.
pub fn int_sort_pairs<V: Clone + Send + Sync>(pairs: &[(u64, V)], range: u64) -> Vec<(u64, V)> {
    int_sort_by_key(pairs, range, |p| p.0)
}

/// One stable counting-sort pass over the digit `(key >> shift) & MASK`.
fn counting_sort_pass(pairs: &mut Vec<(u64, u32)>, shift: u32) {
    let n = pairs.len();
    let radix = 1usize << DIGIT_BITS;
    let mask = (radix - 1) as u64;
    let digit = |k: u64| ((k >> shift) & mask) as usize;

    if n <= SEQ_THRESHOLD {
        // Sequential stable counting sort.
        let mut counts = vec![0usize; radix];
        for &(k, _) in pairs.iter() {
            counts[digit(k)] += 1;
        }
        let mut starts = vec![0usize; radix];
        let mut acc = 0usize;
        for d in 0..radix {
            starts[d] = acc;
            acc += counts[d];
        }
        let mut out = vec![(0u64, 0u32); n];
        for &(k, i) in pairs.iter() {
            let d = digit(k);
            out[starts[d]] = (k, i);
            starts[d] += 1;
        }
        *pairs = out;
        return;
    }

    let nb = num_chunks(n);
    let chunk = n.div_ceil(nb);

    // Phase 1: per-block digit histograms (parallel over blocks).
    let counts: Vec<Vec<u32>> = pairs
        .par_chunks(chunk)
        .map(|c| {
            let mut local = vec![0u32; radix];
            for &(k, _) in c {
                local[digit(k)] += 1;
            }
            local
        })
        .collect();
    let nb = counts.len();

    // Phase 2: carve the output into disjoint (digit, block) windows laid out
    // in digit-major order, which is exactly the stable output order.
    let mut out = vec![(0u64, 0u32); n];
    let mut per_block: Vec<Vec<&mut [(u64, u32)]>> =
        (0..nb).map(|_| Vec::with_capacity(radix)).collect();
    let mut rest = out.as_mut_slice();
    for d in 0..radix {
        for (b, block_counts) in counts.iter().enumerate() {
            let len = block_counts[d] as usize;
            let (head, tail) = rest.split_at_mut(len);
            per_block[b].push(head);
            rest = tail;
        }
    }
    debug_assert!(rest.is_empty());

    // Phase 3: each block scatters its elements, in order, into its own
    // windows — stable and race-free by construction.
    per_block
        .into_par_iter()
        .zip(pairs.par_chunks(chunk))
        .for_each(|(mut windows, block)| {
            let mut cursors = vec![0usize; radix];
            for &(k, i) in block {
                let d = digit(k);
                windows[d][cursors[d]] = (k, i);
                cursors[d] += 1;
            }
        });

    *pairs = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sorted_stable(keys: &[u64], perm: &[u32]) {
        assert_eq!(keys.len(), perm.len());
        for w in perm.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            assert!(
                keys[a] < keys[b] || (keys[a] == keys[b] && a < b),
                "not stable-sorted at {a},{b}"
            );
        }
        let mut seen = vec![false; keys.len()];
        for &i in perm {
            assert!(!seen[i as usize], "permutation repeats index {i}");
            seen[i as usize] = true;
        }
    }

    #[test]
    fn empty_input() {
        assert!(sort_indices_by_key(&[], 10).is_empty());
    }

    #[test]
    fn small_input_sequential_path() {
        let keys = vec![5u64, 3, 5, 1, 0, 3];
        let perm = sort_indices_by_key(&keys, 6);
        check_sorted_stable(&keys, &perm);
        assert_eq!(perm, vec![4, 3, 1, 5, 0, 2]);
    }

    #[test]
    fn large_input_parallel_path() {
        let n = 80_000usize;
        let keys: Vec<u64> = (0..n as u64)
            .map(|i| (i * 2654435761) % (n as u64))
            .collect();
        let perm = sort_indices_by_key(&keys, n as u64);
        check_sorted_stable(&keys, &perm);
    }

    #[test]
    fn multi_pass_large_range() {
        let n = 30_000usize;
        let range = 1u64 << 40;
        let keys: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15)) % range)
            .collect();
        let perm = sort_indices_by_key(&keys, range);
        check_sorted_stable(&keys, &perm);
    }

    #[test]
    fn all_equal_keys_preserve_order() {
        let keys = vec![7u64; 10_000];
        let perm = sort_indices_by_key(&keys, 8);
        let expect: Vec<u32> = (0..10_000u32).collect();
        assert_eq!(perm, expect);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_key_panics() {
        let _ = sort_indices_by_key(&[1, 2, 100], 10);
    }

    #[test]
    fn sort_by_key_gathers_items() {
        let items: Vec<(u64, &str)> = vec![(3, "c"), (1, "a"), (2, "b"), (1, "a2")];
        let sorted = int_sort_by_key(&items, 4, |p| p.0);
        assert_eq!(sorted, vec![(1, "a"), (1, "a2"), (2, "b"), (3, "c")]);
    }

    #[test]
    fn sort_pairs_matches_std_stable_sort() {
        let n = 50_000usize;
        let pairs: Vec<(u64, u32)> = (0..n)
            .map(|i| (((i * 48271) % 257) as u64, i as u32))
            .collect();
        let got = int_sort_pairs(&pairs, 257);
        let mut want = pairs.clone();
        want.sort_by_key(|p| p.0);
        assert_eq!(got, want);
    }
}
