//! Parallel packing (compaction / filtering).
//!
//! `pack` takes a sequence and a predicate (or flag vector) and returns the
//! selected elements in their original order using `O(n)` work and
//! polylogarithmic span. This is the standard scan-based compaction from
//! JáJá's textbook that Lemma 2.1 and Lemma 5.9 of the paper rely on.

use rayon::prelude::*;

use crate::{chunk_len, scan::scan_exclusive, SEQ_THRESHOLD};

/// Packs the elements of `input` whose corresponding `flags` entry is `true`,
/// preserving order.
///
/// # Panics
/// Panics if `input.len() != flags.len()`.
pub fn pack<T: Clone + Send + Sync>(input: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(
        input.len(),
        flags.len(),
        "pack: input and flag vectors must have equal length"
    );
    pack_map(input, |i, _x| flags[i])
}

/// Packs the *indices* at which `flags` is `true`, in increasing order.
pub fn pack_indices(flags: &[bool]) -> Vec<usize> {
    let n = flags.len();
    if n <= SEQ_THRESHOLD {
        return flags
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| if f { Some(i) } else { None })
            .collect();
    }
    let chunk = chunk_len(n);
    let counts: Vec<u64> = flags
        .par_chunks(chunk)
        .map(|c| c.iter().filter(|&&f| f).count() as u64)
        .collect();
    let (offsets, total) = scan_exclusive(&counts);
    let mut out = vec![0usize; total as usize];
    // Split the output into disjoint per-chunk windows so each task writes
    // only its own region.
    let mut windows: Vec<&mut [usize]> = Vec::with_capacity(counts.len());
    let mut rest = out.as_mut_slice();
    for (&cnt, _) in counts.iter().zip(offsets.iter()) {
        let (head, tail) = rest.split_at_mut(cnt as usize);
        windows.push(head);
        rest = tail;
    }
    windows
        .into_par_iter()
        .zip(flags.par_chunks(chunk))
        .enumerate()
        .for_each(|(ci, (win, fchunk))| {
            let base = ci * chunk;
            let mut k = 0;
            for (j, &f) in fchunk.iter().enumerate() {
                if f {
                    win[k] = base + j;
                    k += 1;
                }
            }
        });
    out
}

/// Packs the elements selected by `keep(index, &element)`, preserving order.
///
/// This is the most general form: the predicate sees both the element and its
/// original index, which is what the CSS construction (positions of 1 bits)
/// and `sift` (Lemma 5.9) need.
pub fn pack_map<T, F>(input: &[T], keep: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(usize, &T) -> bool + Send + Sync,
{
    let n = input.len();
    if n <= SEQ_THRESHOLD {
        return input
            .iter()
            .enumerate()
            .filter_map(|(i, x)| if keep(i, x) { Some(x.clone()) } else { None })
            .collect();
    }
    let chunk = chunk_len(n);
    let counts: Vec<u64> = input
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, c)| {
            let base = ci * chunk;
            c.iter()
                .enumerate()
                .filter(|(j, x)| keep(base + j, x))
                .count() as u64
        })
        .collect();
    let (_, total) = scan_exclusive(&counts);
    let mut out: Vec<T> = Vec::with_capacity(total as usize);
    // Build per-chunk vectors in parallel, then stitch them together with a
    // parallel extend; both phases are linear work.
    let parts: Vec<Vec<T>> = input
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, c)| {
            let base = ci * chunk;
            c.iter()
                .enumerate()
                .filter_map(|(j, x)| {
                    if keep(base + j, x) {
                        Some(x.clone())
                    } else {
                        None
                    }
                })
                .collect()
        })
        .collect();
    for p in parts {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_empty() {
        let out: Vec<u32> = pack(&[], &[]);
        assert!(out.is_empty());
        assert!(pack_indices(&[]).is_empty());
    }

    #[test]
    fn pack_small() {
        let input = vec![10, 20, 30, 40, 50];
        let flags = vec![true, false, true, false, true];
        assert_eq!(pack(&input, &flags), vec![10, 30, 50]);
        assert_eq!(pack_indices(&flags), vec![0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pack_length_mismatch_panics() {
        let _ = pack(&[1, 2, 3], &[true]);
    }

    #[test]
    fn pack_large_matches_sequential() {
        let n = 70_000usize;
        let input: Vec<u64> = (0..n as u64).collect();
        let flags: Vec<bool> = (0..n).map(|i| (i * 7919) % 3 == 0).collect();
        let got = pack(&input, &flags);
        let want: Vec<u64> = input
            .iter()
            .zip(&flags)
            .filter_map(|(&x, &f)| if f { Some(x) } else { None })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_indices_large_matches_sequential() {
        let n = 60_000usize;
        let flags: Vec<bool> = (0..n).map(|i| i % 5 == 1 || i % 977 == 0).collect();
        let got = pack_indices(&flags);
        let want: Vec<usize> = (0..n).filter(|&i| flags[i]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_all_and_none() {
        let input: Vec<u32> = (0..10_000).collect();
        assert_eq!(pack_map(&input, |_, _| true), input);
        assert!(pack_map(&input, |_, _| false).is_empty());
    }

    #[test]
    fn pack_map_uses_index() {
        let input: Vec<u32> = (0..30_000).map(|i| i % 7).collect();
        let got = pack_map(&input, |i, &x| i % 2 == 0 && x < 3);
        let want: Vec<u32> = input
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| if i % 2 == 0 && x < 3 { Some(x) } else { None })
            .collect();
        assert_eq!(got, want);
    }
}
