//! Atomic publication of shared immutable values: a home-built `ArcCell`.
//!
//! The engine's shard workers publish an immutable snapshot after (some)
//! minibatches, and query threads read the latest one. A
//! `RwLock<Arc<Snapshot>>` serves that pattern but pays an OS-backed lock
//! word on every read *and* every write — on the ingest hot path that is a
//! contended atomic RMW plus a potential futex wait for what is logically a
//! single pointer exchange. [`ArcCell`] keeps exactly the pointer exchange:
//!
//! * the cell owns one strong reference, stored as a raw pointer in an
//!   [`AtomicPtr`];
//! * [`ArcCell::set`] (the single writer) swaps the pointer in with
//!   `Release` ordering, so everything written before the publication is
//!   visible to any reader that observes the new pointer;
//! * [`ArcCell::get`] briefly swaps the pointer *out* (taking ownership of
//!   the cell's strong count), clones the `Arc`, and puts it back.
//!
//! The swap-out window in `get` means two concurrent readers exclude each
//! other for the few instructions between the swap and the store — an
//! obstruction-free busy-wait, not a lock: there is no OS interaction, no
//! writer starvation (writers use the same protocol), and the window does
//! not scale with the size of `T`. This is the classic `ArcCell` design
//! (crossbeam 0.2); it is rebuilt here because the offline build vendors no
//! concurrency crates.
//!
//! ```
//! use std::sync::Arc;
//! use psfa_primitives::ArcCell;
//!
//! let cell = ArcCell::new(Arc::new(1u64));
//! assert_eq!(*cell.get(), 1);
//! let old = cell.set(Arc::new(2));
//! assert_eq!((*old, *cell.get()), (1, 2));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// A shared, atomically swappable [`Arc`] slot (see the module docs).
pub struct ArcCell<T> {
    /// Raw pointer from `Arc::into_raw`, representing one strong reference
    /// owned by the cell. Null only transiently, while a `get`/`set` holds
    /// the reference on its own stack.
    ptr: AtomicPtr<T>,
}

// The cell hands out clones of an `Arc<T>` across threads, so it needs
// exactly the bounds `Arc<T>: Send + Sync` needs.
unsafe impl<T: Send + Sync> Send for ArcCell<T> {}
unsafe impl<T: Send + Sync> Sync for ArcCell<T> {}

impl<T> ArcCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
        }
    }

    /// Takes the cell's strong reference off the slot, spinning through the
    /// (normally nanoseconds-long) windows in which another thread holds
    /// it. After a short burst of pure spinning the wait yields to the
    /// scheduler: if the slot-holder was preempted mid-`get` on an
    /// oversubscribed host, burning its timeslice away would only delay
    /// the holder further (priority inversion) — yielding hands it the CPU
    /// it needs to put the pointer back.
    fn take(&self) -> Arc<T> {
        let mut spins = 0u32;
        loop {
            let raw = self.ptr.swap(std::ptr::null_mut(), Ordering::Acquire);
            if !raw.is_null() {
                // SAFETY: a non-null pointer in the slot is always the
                // `Arc::into_raw` of a strong reference owned by the cell,
                // and the swap transferred that ownership to us exclusively.
                return unsafe { Arc::from_raw(raw) };
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Puts a strong reference back into the (currently null) slot.
    fn put(&self, value: Arc<T>) {
        self.ptr
            .store(Arc::into_raw(value).cast_mut(), Ordering::Release);
    }

    /// Returns a clone of the current value.
    ///
    /// Pairs with [`ArcCell::set`]: observing a pointer published by `set`
    /// makes every write the publisher performed before the `set` visible
    /// (`Release` store / `Acquire` swap).
    pub fn get(&self) -> Arc<T> {
        let current = self.take();
        let out = current.clone();
        self.put(current);
        out
    }

    /// Publishes `value` and returns the previously held one.
    pub fn set(&self, value: Arc<T>) -> Arc<T> {
        let old = self.take();
        self.put(value);
        old
    }
}

impl<T> Drop for ArcCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no other thread can hold the slot mid-swap, so the
        // pointer is non-null and owned by the cell.
        let raw = *self.ptr.get_mut();
        if !raw.is_null() {
            // SAFETY: the slot owns one strong reference (see `put`).
            unsafe { drop(Arc::from_raw(raw)) };
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for ArcCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ArcCell").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn get_and_set_exchange_values() {
        let cell = ArcCell::new(Arc::new(vec![1, 2, 3]));
        assert_eq!(*cell.get(), vec![1, 2, 3]);
        let old = cell.set(Arc::new(vec![4]));
        assert_eq!(*old, vec![1, 2, 3]);
        assert_eq!(*cell.get(), vec![4]);
    }

    #[test]
    fn no_reference_is_leaked_or_double_freed() {
        let first = Arc::new(7u64);
        let cell = ArcCell::new(first.clone());
        let second = Arc::new(8u64);
        let got = cell.get();
        let old = cell.set(second.clone());
        drop(cell);
        // `first` is referenced by `first`, `got`, and `old` only.
        drop(got);
        drop(old);
        assert_eq!(Arc::strong_count(&first), 1);
        assert_eq!(Arc::strong_count(&second), 1);
    }

    #[test]
    fn concurrent_readers_and_one_writer_never_tear() {
        // One writer republishes (epoch, 2*epoch) pairs; readers must always
        // observe internally consistent pairs with monotone epochs.
        let cell = Arc::new(ArcCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let pair = cell.get();
                    assert_eq!(pair.1, 2 * pair.0, "torn read: {pair:?}");
                    assert!(pair.0 >= last, "epoch went backwards");
                    last = pair.0;
                }
            }));
        }
        for epoch in 1..=10_000u64 {
            cell.set(Arc::new((epoch, 2 * epoch)));
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.get().0, 10_000);
    }
}
