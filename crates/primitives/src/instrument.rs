//! Lightweight work instrumentation.
//!
//! The paper's central efficiency claims are about *work* (total operation
//! count), not wall-clock time. To let the experiment harness check the
//! linear-work / work-optimality claims (Corollary 5.11, experiment E8)
//! independently of machine noise, the aggregate implementations charge the
//! dominant operations of each minibatch to a [`WorkMeter`]. The meter is a
//! thin wrapper over a relaxed atomic counter, so it is safe to update from
//! inside rayon tasks and its overhead is negligible compared with the work
//! being counted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable counter of abstract work units.
///
/// Cloning a `WorkMeter` yields a handle to the same underlying counter —
/// a [`WorkMeter::reset`] through any clone therefore zeroes the total
/// observed by every other clone. Updates are relaxed atomics: totals read
/// concurrently with charges are exact for all charges that
/// happened-before the read, and never torn.
///
/// ## Overflow
///
/// The counter **wraps** at `u64::MAX` (relaxed `fetch_add` semantics).
/// At the charge rates of this codebase (`O(1/ε)` units per minibatch)
/// wrapping would take centuries of sustained ingest, so no saturation
/// check is paid on the hot path; long-lived monitors that care should
/// [`WorkMeter::reset`] periodically and accumulate the returned deltas.
#[derive(Debug, Clone, Default)]
pub struct WorkMeter {
    ops: Arc<AtomicU64>,
}

impl WorkMeter {
    /// Creates a meter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` units of work to the meter (wrapping on overflow; see
    /// the type docs).
    #[inline]
    pub fn charge(&self, n: u64) {
        self.ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total of charged work units.
    pub fn total(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Resets the meter to zero and returns the previous total. Affects
    /// every clone sharing the counter; charges racing the reset land on
    /// exactly one side of it (atomic swap), never lost.
    pub fn reset(&self) -> u64 {
        self.ops.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn charges_accumulate() {
        let m = WorkMeter::new();
        m.charge(5);
        m.charge(7);
        assert_eq!(m.total(), 12);
        assert_eq!(m.reset(), 12);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn clones_share_the_counter() {
        let m = WorkMeter::new();
        let m2 = m.clone();
        m.charge(3);
        m2.charge(4);
        assert_eq!(m.total(), 7);
        assert_eq!(m2.total(), 7);
    }

    #[test]
    fn parallel_charges_are_not_lost() {
        let m = WorkMeter::new();
        (0..10_000u64).into_par_iter().for_each(|_| m.charge(1));
        assert_eq!(m.total(), 10_000);
    }
}
