//! Linear-work parallel histogram construction (`buildHist`, Theorem 2.3).
//!
//! Given a minibatch of item identifiers, `buildHist` returns the distinct
//! items together with their frequencies in `O(µ)` expected work and
//! polylogarithmic depth. Following the paper's proof, items are first
//! hashed into a range `R = O(µ)` with an `O(log µ)`-wise independent family,
//! grouped by hash value using the linear-work integer sort (Theorem 2.2),
//! and each bucket is then collapsed with the `collectBin` routine, whose
//! cost is proportional to (bucket size × distinct items in the bucket) —
//! `O(µ)` in expectation by the balls-and-bins argument.
//!
//! [`build_hist_hashmap`] is a fold/reduce hash-map alternative used as the
//! ablation point called out in DESIGN.md §5.

use rayon::prelude::*;

use crate::hash::{HashFamily, PolynomialHash};
use crate::intsort::sort_indices_by_key;
use crate::SEQ_THRESHOLD;

/// One row of a histogram: a distinct item identifier and its frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramEntry {
    /// Item identifier.
    pub item: u64,
    /// Number of occurrences in the input segment.
    pub count: u64,
}

/// Builds the frequency histogram of `items` (Theorem 2.3).
///
/// The output lists each distinct item exactly once, in unspecified order.
/// `seed` drives the internal hash function; any value gives a correct
/// histogram, the seed only matters for reproducibility of the bucket layout.
pub fn build_hist(items: &[u64], seed: u64) -> Vec<HistogramEntry> {
    let mu = items.len();
    if mu == 0 {
        return Vec::new();
    }
    if mu <= SEQ_THRESHOLD {
        return sequential_hist(items);
    }

    // Hash into a range R = O(µ) (next power of two, at least 16).
    let range = (mu as u64).next_power_of_two().max(16);
    let hasher = PolynomialHash::from_seed(8, range, seed);
    let hashes: Vec<u64> = items.par_iter().map(|&x| hasher.hash(x)).collect();

    // Group identical hash values together with the linear-work integer sort.
    let perm = sort_indices_by_key(&hashes, range);

    // Find bucket boundaries in the sorted order.
    let starts: Vec<usize> = (0..perm.len())
        .into_par_iter()
        .filter(|&i| i == 0 || hashes[perm[i] as usize] != hashes[perm[i - 1] as usize])
        .collect();

    // Collapse every bucket in parallel (collectBin).
    let bucket_results: Vec<Vec<HistogramEntry>> = starts
        .par_iter()
        .enumerate()
        .map(|(b, &start)| {
            let end = starts.get(b + 1).copied().unwrap_or(perm.len());
            collect_bin(items, &perm[start..end])
        })
        .collect();

    let mut out = Vec::with_capacity(bucket_results.iter().map(Vec::len).sum());
    for mut v in bucket_results {
        out.append(&mut v);
    }
    out
}

/// `collectBin`: collapses one hash bucket into (item, frequency) pairs.
///
/// The bucket is expected to contain few distinct items (O(log µ) with high
/// probability), so a linear scan per distinct item matches the cost model in
/// the proof of Theorem 2.3.
fn collect_bin(items: &[u64], bucket: &[u32]) -> Vec<HistogramEntry> {
    let mut entries: Vec<HistogramEntry> = Vec::new();
    'outer: for &idx in bucket {
        let item = items[idx as usize];
        for e in entries.iter_mut() {
            if e.item == item {
                e.count += 1;
                continue 'outer;
            }
        }
        entries.push(HistogramEntry { item, count: 1 });
    }
    entries
}

/// Sequential histogram for small inputs.
///
/// The map is sized by a distinct-count guess, not the raw length: a large
/// heavily skewed batch hitting this path (e.g. driven directly by a caller
/// with `SEQ_THRESHOLD`-sized batches of one hot key) holds only a handful
/// of distinct items, and `with_capacity(items.len())` would allocate — and
/// immediately waste — a table for the worst case. The map grows on demand
/// for genuinely distinct-heavy inputs.
fn sequential_hist(items: &[u64]) -> Vec<HistogramEntry> {
    let mut map = std::collections::HashMap::with_capacity(items.len().min(1024));
    for &x in items {
        *map.entry(x).or_insert(0u64) += 1;
    }
    map.into_iter()
        .map(|(item, count)| HistogramEntry { item, count })
        .collect()
}

/// Reusable scratch buffers for [`build_hist_into`]: the hash values, the
/// counting-sort bucket table, the sorted permutation, and the small-batch
/// hash map. After a warm-up batch of each size class, repeated calls
/// perform **zero heap allocations** — the buffers only ever grow.
#[derive(Debug, Default)]
pub struct HistScratch {
    /// Per-item hash values (large-batch path).
    hashes: Vec<u64>,
    /// Counting-sort bucket counters / running offsets, one per hash value.
    buckets: Vec<u32>,
    /// Item indices grouped by hash value.
    perm: Vec<u32>,
    /// Small-batch accumulator (`µ ≤ SEQ_THRESHOLD`); `clear` keeps its
    /// table, so steady-state small batches allocate nothing either.
    map: std::collections::HashMap<u64, u64>,
    /// The histogram hash function, reseeded in place per batch
    /// ([`PolynomialHash::reseed`]) so its coefficient buffer is reused.
    hasher: Option<PolynomialHash>,
}

impl HistScratch {
    /// Creates empty scratch; buffers are sized lazily by the first batches.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Allocation-free variant of [`build_hist`]: writes the histogram of
/// `items` into `out` (cleared first), drawing every intermediate buffer
/// from `scratch`.
///
/// Produces the same multiset of [`HistogramEntry`] rows as [`build_hist`]
/// (entry *order* is unspecified for both). Unlike `build_hist` it is
/// deliberately sequential: it exists for per-shard ingest hot paths — the
/// sharded engine already runs one worker per core, so intra-batch
/// parallelism inside a shard would only fight the other shards for cores,
/// while the fresh `Vec`s of the parallel version (`hashes`, the sort, the
/// bucket outputs) dominate its constant factor. Work is `O(µ)` expected,
/// by the same hash-group-collect structure as Theorem 2.3: items are
/// hashed into a range `R = O(µ)`, grouped with a counting sort over the
/// reused bucket table, and each group collapsed with the `collectBin`
/// scan.
pub fn build_hist_into(
    items: &[u64],
    seed: u64,
    scratch: &mut HistScratch,
    out: &mut Vec<HistogramEntry>,
) {
    out.clear();
    let mu = items.len();
    if mu == 0 {
        return;
    }
    if mu <= SEQ_THRESHOLD {
        scratch.map.clear();
        for &x in items {
            *scratch.map.entry(x).or_insert(0u64) += 1;
        }
        out.extend(
            scratch
                .map
                .iter()
                .map(|(&item, &count)| HistogramEntry { item, count }),
        );
        return;
    }

    // Hash into a range R = O(µ), exactly as `build_hist`.
    let range = (mu as u64).next_power_of_two().max(16) as usize;
    let hasher = match &mut scratch.hasher {
        Some(hasher) => {
            hasher.reseed(8, range as u64, seed);
            &*hasher
        }
        slot @ None => slot.insert(PolynomialHash::from_seed(8, range as u64, seed)),
    };
    scratch.hashes.clear();
    scratch.hashes.extend(items.iter().map(|&x| hasher.hash(x)));

    // Group identical hash values with a counting sort over the reused
    // bucket table (grow-only; zeroing it is O(R) = O(µ) per batch).
    if scratch.buckets.len() < range {
        scratch.buckets.resize(range, 0);
    }
    let buckets = &mut scratch.buckets[..range];
    buckets.fill(0);
    for &h in &scratch.hashes {
        buckets[h as usize] += 1;
    }
    // Exclusive prefix sums turn counts into running write offsets.
    let mut running = 0u32;
    for b in buckets.iter_mut() {
        let count = *b;
        *b = running;
        running += count;
    }
    scratch.perm.clear();
    scratch.perm.resize(mu, 0);
    for (idx, &h) in scratch.hashes.iter().enumerate() {
        let slot = &mut buckets[h as usize];
        scratch.perm[*slot as usize] = idx as u32;
        *slot += 1;
    }

    // collectBin per hash group, appending directly into `out`: within one
    // group, duplicates are folded with a linear scan over the group's own
    // tail of `out` (few distinct items per bucket w.h.p., Theorem 2.3).
    let mut i = 0usize;
    while i < mu {
        let group_hash = scratch.hashes[scratch.perm[i] as usize];
        let group_start = out.len();
        while i < mu && scratch.hashes[scratch.perm[i] as usize] == group_hash {
            let item = items[scratch.perm[i] as usize];
            match out[group_start..].iter_mut().find(|e| e.item == item) {
                Some(e) => e.count += 1,
                None => out.push(HistogramEntry { item, count: 1 }),
            }
            i += 1;
        }
    }
}

/// Fold/reduce hash-map histogram (ablation baseline for `build_hist`).
///
/// Each rayon worker folds its share of the input into a private `HashMap`
/// and the per-worker maps are merged pairwise. The merge step is a
/// potential sequential bottleneck for very large numbers of distinct items —
/// exactly the effect the ablation experiment measures.
pub fn build_hist_hashmap(items: &[u64]) -> Vec<HistogramEntry> {
    use std::collections::HashMap;
    let map = items
        .par_iter()
        .fold(HashMap::new, |mut acc: HashMap<u64, u64>, &x| {
            *acc.entry(x).or_insert(0) += 1;
            acc
        })
        .reduce(HashMap::new, |a, b| {
            if a.len() < b.len() {
                return merge_into(b, a);
            }
            merge_into(a, b)
        });
    fn merge_into(
        mut big: std::collections::HashMap<u64, u64>,
        small: std::collections::HashMap<u64, u64>,
    ) -> std::collections::HashMap<u64, u64> {
        for (k, v) in small {
            *big.entry(k).or_insert(0) += v;
        }
        big
    }
    map.into_iter()
        .map(|(item, count)| HistogramEntry { item, count })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn reference(items: &[u64]) -> HashMap<u64, u64> {
        let mut m = HashMap::new();
        for &x in items {
            *m.entry(x).or_insert(0) += 1;
        }
        m
    }

    fn check_against_reference(items: &[u64], hist: &[HistogramEntry]) {
        let want = reference(items);
        assert_eq!(hist.len(), want.len(), "distinct-item count mismatch");
        for e in hist {
            assert_eq!(
                want.get(&e.item).copied(),
                Some(e.count),
                "wrong count for item {}",
                e.item
            );
        }
        let total: u64 = hist.iter().map(|e| e.count).sum();
        assert_eq!(total, items.len() as u64, "histogram total must equal µ");
    }

    #[test]
    fn empty_input() {
        assert!(build_hist(&[], 0).is_empty());
        assert!(build_hist_hashmap(&[]).is_empty());
    }

    #[test]
    fn small_input_sequential_path() {
        let items = vec![5, 5, 2, 9, 2, 5];
        check_against_reference(&items, &build_hist(&items, 1));
    }

    #[test]
    fn large_uniform_input() {
        let items: Vec<u64> = (0..60_000u64).map(|i| (i * 48271) % 500).collect();
        check_against_reference(&items, &build_hist(&items, 7));
    }

    #[test]
    fn large_skewed_input() {
        // 90% of the mass on item 0, the rest spread out.
        let items: Vec<u64> = (0..80_000u64)
            .map(|i| {
                if i % 10 != 0 {
                    0
                } else {
                    1 + (i * 7919) % 10_000
                }
            })
            .collect();
        check_against_reference(&items, &build_hist(&items, 13));
    }

    #[test]
    fn all_distinct_items() {
        let items: Vec<u64> = (0..30_000u64).map(|i| i * 1_000_003).collect();
        check_against_reference(&items, &build_hist(&items, 99));
    }

    #[test]
    fn single_repeated_item() {
        let items = vec![42u64; 50_000];
        let hist = build_hist(&items, 3);
        assert_eq!(hist.len(), 1);
        assert_eq!(
            hist[0],
            HistogramEntry {
                item: 42,
                count: 50_000
            }
        );
    }

    #[test]
    fn different_seeds_agree() {
        let items: Vec<u64> = (0..40_000u64).map(|i| (i * 31) % 1000).collect();
        for seed in 0..4 {
            check_against_reference(&items, &build_hist(&items, seed));
        }
    }

    #[test]
    fn hashmap_variant_matches_reference() {
        let items: Vec<u64> = (0..50_000u64).map(|i| (i * 2654435761) % 3000).collect();
        check_against_reference(&items, &build_hist_hashmap(&items));
    }

    #[test]
    fn scratch_variant_matches_reference_across_reuse() {
        // One scratch reused across wildly different batch shapes: small
        // (sequential path), large uniform, large skewed, all distinct.
        let mut scratch = HistScratch::new();
        let mut out = Vec::new();
        let workloads: Vec<Vec<u64>> = vec![
            vec![5, 5, 2, 9, 2, 5],
            (0..60_000u64).map(|i| (i * 48271) % 500).collect(),
            (0..80_000u64)
                .map(|i| {
                    if i % 10 != 0 {
                        0
                    } else {
                        1 + (i * 7919) % 10_000
                    }
                })
                .collect(),
            (0..30_000u64).map(|i| i * 1_000_003).collect(),
            Vec::new(),
            vec![42u64; 50_000],
        ];
        for (round, items) in workloads.iter().enumerate() {
            build_hist_into(items, round as u64 * 31 + 7, &mut scratch, &mut out);
            check_against_reference(items, &out);
        }
    }

    #[test]
    fn scratch_variant_agrees_with_parallel_variant() {
        let items: Vec<u64> = (0..40_000u64).map(|i| (i * 31) % 1000).collect();
        let mut scratch = HistScratch::new();
        let mut out = Vec::new();
        for seed in 0..4 {
            build_hist_into(&items, seed, &mut scratch, &mut out);
            let mut a = out.clone();
            let mut b = build_hist(&items, seed);
            a.sort_unstable_by_key(|e| e.item);
            b.sort_unstable_by_key(|e| e.item);
            assert_eq!(a, b, "seed {seed}");
        }
    }
}
