//! Deterministic fault injection: a seedable plan of typed fault points.
//!
//! Production fault tolerance is untestable without a way to *cause*
//! faults on demand. A [`FaultPlan`] is a declarative schedule of typed
//! fault points — worker panics, store write errors, lane-push stalls,
//! connection drops — that the engine, persister, producers, and serving
//! layer consult at their respective fault sites. The plan is threaded as
//! an `Option<Arc<FaultPlan>>` exactly like the observability config
//! introduced earlier: when unset the fault sites compile down to a single
//! `Option` branch on the hot path and nothing else, so production
//! binaries pay nothing for the machinery.
//!
//! ## Determinism
//!
//! Every fault point names its trigger explicitly (shard + batch ordinal,
//! append ordinal, frame count), so a given plan produces the same fault
//! sequence on every run — which is what makes the recovery tests
//! reproducible. Each point fires **at most once** (an atomic fired flag),
//! so a worker restarted from a snapshot that replays past the trigger
//! ordinal does not re-trip the same fault forever. [`FaultPlan::from_seed`]
//! derives a whole schedule from one `u64` for property tests.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A worker panic scheduled for one shard's `batch`-th ingested minibatch.
#[derive(Debug)]
struct WorkerPanic {
    shard: usize,
    batch: u64,
    fired: AtomicBool,
}

/// A store write failure scheduled for the `ordinal`-th epoch append.
#[derive(Debug)]
struct StoreWriteError {
    ordinal: u64,
    fired: AtomicBool,
}

/// A producer-side stall before the lane push of one shard's `batch`-th
/// routed sub-batch.
#[derive(Debug)]
struct LaneStall {
    shard: usize,
    batch: u64,
    stall: Duration,
    fired: AtomicBool,
}

/// A deterministic schedule of typed fault points (see the module docs).
///
/// Build one with the `with_*` methods (or [`FaultPlan::from_seed`]) and
/// hand it to `EngineConfig::fault_injection(..)` / the serve config. The
/// plan is shared by every fault site through one `Arc`, so the per-point
/// fired flags are global: a fault fires exactly once per plan instance.
#[derive(Default)]
pub struct FaultPlan {
    worker_panics: Vec<WorkerPanic>,
    store_write_errors: Vec<StoreWriteError>,
    lane_stalls: Vec<LaneStall>,
    /// Server-side: drop each connection after this many served frames.
    drop_after_frames: Option<u64>,
    /// Supervisor-side: hold a quarantined shard this long before the
    /// restart (widens the observable degraded-query window for tests).
    restart_delay: Option<Duration>,
    /// Monotone count of store appends attempted (the ordinal clock for
    /// [`FaultPlan::store_write_error`]).
    appends: AtomicU64,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("worker_panics", &self.worker_panics.len())
            .field("store_write_errors", &self.store_write_errors.len())
            .field("lane_stalls", &self.lane_stalls.len())
            .field("drop_after_frames", &self.drop_after_frames)
            .field("restart_delay", &self.restart_delay)
            .finish_non_exhaustive()
    }
}

impl FaultPlan {
    /// An empty plan: no fault ever fires.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a worker panic on `shard` when it ingests its `batch`-th
    /// minibatch (1-based: `batch = 1` panics on the first minibatch).
    pub fn with_worker_panic(mut self, shard: usize, batch: u64) -> Self {
        self.worker_panics.push(WorkerPanic {
            shard,
            batch,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedules an `io::Error` on the `ordinal`-th store append attempt
    /// (0-based), surfacing through the persister as a flush failure.
    pub fn with_store_write_error(mut self, ordinal: u64) -> Self {
        self.store_write_errors.push(StoreWriteError {
            ordinal,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedules a producer-side stall of `stall` before the lane push of
    /// `shard`'s `batch`-th routed sub-batch (1-based), simulating a slow
    /// or wedged producer.
    pub fn with_lane_stall(mut self, shard: usize, batch: u64, stall: Duration) -> Self {
        self.lane_stalls.push(LaneStall {
            shard,
            batch,
            stall,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Makes the server drop every connection after serving `frames`
    /// request frames on it (exercises client reconnect logic).
    pub fn with_connection_drop_after(mut self, frames: u64) -> Self {
        self.drop_after_frames = Some(frames);
        self
    }

    /// Holds a quarantined shard for `delay` before its restart, widening
    /// the window in which queries observe the degraded state.
    pub fn with_restart_delay(mut self, delay: Duration) -> Self {
        self.restart_delay = Some(delay);
        self
    }

    /// Derives a deterministic schedule of `panics` worker panics (plus
    /// one store write error when the seed's low bit is set) spread over
    /// `shards` shards and a horizon of `batches` minibatches per shard.
    pub fn from_seed(seed: u64, shards: usize, batches: u64, panics: usize) -> Self {
        assert!(shards > 0, "fault plan needs at least one shard");
        let mut plan = FaultPlan::new();
        let mut state = seed | 1; // xorshift64* must not start at zero
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..panics {
            let shard = (next() % shards as u64) as usize;
            let batch = 1 + next() % batches.max(1);
            plan = plan.with_worker_panic(shard, batch);
        }
        if seed & 1 == 1 {
            plan = plan.with_store_write_error(next() % 4);
        }
        plan
    }

    /// Number of worker panics this plan schedules.
    pub fn planned_worker_panics(&self) -> usize {
        self.worker_panics.len()
    }

    /// Consumes (at most once) a worker panic scheduled for `shard`'s
    /// `batch`-th minibatch. The worker calls this at the top of its
    /// ingest path and panics when it returns `true`.
    pub fn worker_panic_due(&self, shard: usize, batch: u64) -> bool {
        self.worker_panics.iter().any(|p| {
            p.shard == shard
                && p.batch == batch
                && p.fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
        })
    }

    /// Advances the append ordinal clock and returns the injected error if
    /// this append is scheduled to fail. The persister calls this before
    /// every store append.
    pub fn store_write_error(&self) -> Option<io::Error> {
        let ordinal = self.appends.fetch_add(1, Ordering::AcqRel);
        self.store_write_errors
            .iter()
            .find(|e| {
                e.ordinal == ordinal
                    && e.fired
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
            })
            .map(|_| {
                io::Error::other(format!(
                    "injected store write failure (fault plan, append #{ordinal})"
                ))
            })
    }

    /// Consumes (at most once) a lane stall scheduled for `shard`'s
    /// `batch`-th routed sub-batch; the producer sleeps for the returned
    /// duration before pushing.
    pub fn lane_stall(&self, shard: usize, batch: u64) -> Option<Duration> {
        self.lane_stalls
            .iter()
            .find(|s| {
                s.shard == shard
                    && s.batch == batch
                    && s.fired
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
            })
            .map(|s| s.stall)
    }

    /// Server-side connection-drop threshold, if scheduled.
    pub fn connection_drop_after(&self) -> Option<u64> {
        self.drop_after_frames
    }

    /// Supervisor-side restart hold, if scheduled.
    pub fn restart_delay(&self) -> Option<Duration> {
        self.restart_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_panic_fires_exactly_once() {
        let plan = FaultPlan::new().with_worker_panic(2, 5);
        assert!(!plan.worker_panic_due(2, 4));
        assert!(!plan.worker_panic_due(1, 5));
        assert!(plan.worker_panic_due(2, 5));
        // A restarted worker replaying past the same ordinal must not
        // re-trip the fault.
        assert!(!plan.worker_panic_due(2, 5));
    }

    #[test]
    fn store_error_fires_on_its_ordinal_only() {
        let plan = FaultPlan::new().with_store_write_error(1);
        assert!(plan.store_write_error().is_none()); // append #0
        assert!(plan.store_write_error().is_some()); // append #1
        assert!(plan.store_write_error().is_none()); // append #2
    }

    #[test]
    fn lane_stall_is_shard_and_batch_scoped() {
        let plan = FaultPlan::new().with_lane_stall(0, 3, Duration::from_millis(7));
        assert!(plan.lane_stall(1, 3).is_none());
        assert_eq!(plan.lane_stall(0, 3), Some(Duration::from_millis(7)));
        assert!(plan.lane_stall(0, 3).is_none());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::from_seed(42, 4, 100, 3);
        let b = FaultPlan::from_seed(42, 4, 100, 3);
        assert_eq!(a.planned_worker_panics(), 3);
        for (x, y) in a.worker_panics.iter().zip(&b.worker_panics) {
            assert_eq!((x.shard, x.batch), (y.shard, y.batch));
            assert!(x.batch >= 1 && x.batch <= 100);
            assert!(x.shard < 4);
        }
    }
}
