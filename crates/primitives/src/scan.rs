//! Parallel prefix sums (scans).
//!
//! The classic two-pass blocked scan: the input is split into `O(P)` chunks,
//! per-chunk totals are computed in parallel, the (short) vector of totals is
//! scanned sequentially, and finally every chunk is re-scanned in parallel
//! seeded with its offset. Work is `O(n)`, span is `O(n / P + P)` which is
//! `O(polylog n)` for any fixed machine, matching the model used in the
//! paper.

use rayon::prelude::*;

use crate::{chunk_len, SEQ_THRESHOLD};

/// Exclusive scan (prefix sums) over `u64` values.
///
/// Returns the vector of prefix sums (element `i` is the sum of
/// `input[..i]`) together with the grand total.
///
/// ```
/// let (pre, total) = psfa_primitives::scan_exclusive(&[1, 2, 3, 4]);
/// assert_eq!(pre, vec![0, 1, 3, 6]);
/// assert_eq!(total, 10);
/// ```
pub fn scan_exclusive(input: &[u64]) -> (Vec<u64>, u64) {
    scan_exclusive_by(input, 0u64, |a, b| a + b)
}

/// Inclusive scan (running sums) over `u64` values.
///
/// Element `i` of the result is the sum of `input[..=i]`.
pub fn scan_inclusive(input: &[u64]) -> Vec<u64> {
    scan_inclusive_by(input, 0u64, |a, b| a + b)
}

/// Exclusive scan over an arbitrary associative operator.
///
/// `identity` must be a left and right identity of `op`, and `op` must be
/// associative; both are required for the blocked parallel decomposition to
/// produce the same result as the sequential scan.
pub fn scan_exclusive_by<T, F>(input: &[T], identity: T, op: F) -> (Vec<T>, T)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Send + Sync,
{
    let n = input.len();
    if n == 0 {
        return (Vec::new(), identity);
    }
    if n <= SEQ_THRESHOLD {
        let mut out = Vec::with_capacity(n);
        let mut acc = identity;
        for x in input {
            out.push(acc.clone());
            acc = op(&acc, x);
        }
        return (out, acc);
    }

    let chunk = chunk_len(n);
    // Pass 1: per-chunk totals.
    let totals: Vec<T> = input
        .par_chunks(chunk)
        .map(|c| c.iter().fold(identity.clone(), |acc, x| op(&acc, x)))
        .collect();

    // Sequential scan of the short totals vector.
    let mut offsets = Vec::with_capacity(totals.len());
    let mut acc = identity.clone();
    for t in &totals {
        offsets.push(acc.clone());
        acc = op(&acc, t);
    }
    let grand_total = acc;

    // Pass 2: per-chunk rescan seeded with the chunk offset.
    let mut out: Vec<T> = vec![identity; n];
    out.par_chunks_mut(chunk)
        .zip(input.par_chunks(chunk))
        .zip(offsets.into_par_iter())
        .for_each(|((out_chunk, in_chunk), seed)| {
            let mut acc = seed;
            for (o, x) in out_chunk.iter_mut().zip(in_chunk) {
                *o = acc.clone();
                acc = op(&acc, x);
            }
        });

    (out, grand_total)
}

/// Inclusive scan over an arbitrary associative operator.
pub fn scan_inclusive_by<T, F>(input: &[T], identity: T, op: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Send + Sync,
{
    let (mut pre, _total) = scan_exclusive_by(input, identity, &op);
    pre.par_iter_mut()
        .zip(input.par_iter())
        .for_each(|(p, x)| *p = op(p, x));
    pre
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_exclusive(input: &[u64]) -> (Vec<u64>, u64) {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0u64;
        for &x in input {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn empty_input() {
        let (pre, total) = scan_exclusive(&[]);
        assert!(pre.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn single_element() {
        let (pre, total) = scan_exclusive(&[7]);
        assert_eq!(pre, vec![0]);
        assert_eq!(total, 7);
    }

    #[test]
    fn small_matches_sequential() {
        let input: Vec<u64> = (0..100).map(|i| (i * 37) % 11).collect();
        assert_eq!(scan_exclusive(&input), seq_exclusive(&input));
    }

    #[test]
    fn large_matches_sequential() {
        let input: Vec<u64> = (0..100_000u64).map(|i| (i * 2654435761) % 97).collect();
        assert_eq!(scan_exclusive(&input), seq_exclusive(&input));
    }

    #[test]
    fn inclusive_matches_exclusive_shifted() {
        let input: Vec<u64> = (0..50_000u64).map(|i| i % 13).collect();
        let inc = scan_inclusive(&input);
        let (exc, total) = scan_exclusive(&input);
        for i in 0..input.len() {
            assert_eq!(inc[i], exc[i] + input[i]);
        }
        assert_eq!(*inc.last().unwrap(), total);
    }

    #[test]
    fn generic_operator_max() {
        // max is associative with identity 0 for u64.
        let input: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let inc = scan_inclusive_by(&input, 0u64, |a, b| (*a).max(*b));
        assert_eq!(inc, vec![3, 3, 4, 4, 5, 9, 9, 9]);
    }

    #[test]
    fn generic_operator_string_concat_is_ordered() {
        // Concatenation is associative but not commutative: exercises that the
        // blocked scan preserves order.
        let input: Vec<String> = (0..5000).map(|i| format!("{},", i % 10)).collect();
        let (pre, total) = scan_exclusive_by(&input, String::new(), |a, b| format!("{a}{b}"));
        let mut expect = String::new();
        for (i, x) in input.iter().enumerate() {
            assert_eq!(pre[i], expect);
            expect.push_str(x);
        }
        assert_eq!(total, expect);
    }
}
