//! Property-based tests for the parallel primitives: every primitive must
//! agree with its obvious sequential specification on arbitrary inputs.

use proptest::prelude::*;
use std::collections::HashMap;

use psfa_primitives::intsort::sort_indices_by_key;
use psfa_primitives::{
    build_hist, build_hist_hashmap, kth_smallest, pack, pack_indices, phi_cutoff,
    phi_cutoff_in_place, scan_exclusive, scan_inclusive, CompactedSegment,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_exclusive_matches_sequential(input in prop::collection::vec(0u64..1000, 0..5000)) {
        let (pre, total) = scan_exclusive(&input);
        let mut acc = 0u64;
        for (i, &x) in input.iter().enumerate() {
            prop_assert_eq!(pre[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn scan_inclusive_is_running_sum(input in prop::collection::vec(0u64..1000, 0..5000)) {
        let inc = scan_inclusive(&input);
        let mut acc = 0u64;
        for (i, &x) in input.iter().enumerate() {
            acc += x;
            prop_assert_eq!(inc[i], acc);
        }
    }

    #[test]
    fn pack_matches_filter(
        input in prop::collection::vec(0u32..100, 0..4000),
        seed in 0u64..u64::MAX,
    ) {
        let flags: Vec<bool> = input
            .iter()
            .enumerate()
            .map(|(i, &x)| (x as u64).wrapping_mul(seed).wrapping_add(i as u64) % 3 == 0)
            .collect();
        let got = pack(&input, &flags);
        let want: Vec<u32> = input
            .iter()
            .zip(&flags)
            .filter_map(|(&x, &f)| if f { Some(x) } else { None })
            .collect();
        prop_assert_eq!(got, want);
        let idx = pack_indices(&flags);
        let want_idx: Vec<usize> = (0..input.len()).filter(|&i| flags[i]).collect();
        prop_assert_eq!(idx, want_idx);
    }

    #[test]
    fn intsort_is_stable_and_sorted(keys in prop::collection::vec(0u64..512, 0..4000)) {
        let perm = sort_indices_by_key(&keys, 512);
        prop_assert_eq!(perm.len(), keys.len());
        for w in perm.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            prop_assert!(keys[a] < keys[b] || (keys[a] == keys[b] && a < b));
        }
        let mut seen = vec![false; keys.len()];
        for &i in &perm {
            prop_assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
    }

    #[test]
    fn kth_smallest_matches_sorting(
        values in prop::collection::vec(0u64..10_000, 1..3000),
        rank_frac in 0.0f64..1.0,
    ) {
        let k = ((values.len() - 1) as f64 * rank_frac) as usize;
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(kth_smallest(&values, k), sorted[k]);
    }

    #[test]
    fn phi_cutoff_properties(
        values in prop::collection::vec(1u64..1000, 0..2000),
        s in 1usize..200,
    ) {
        let phi = phi_cutoff(&values, s);
        let survivors = values.iter().filter(|&&v| v > phi).count();
        prop_assert!(survivors <= s);
        if phi > 0 {
            let touched = values.iter().filter(|&&v| v >= phi).count();
            prop_assert!(touched >= s);
        }
        // The in-place hot-path variant selects the identical cut-off.
        let mut scratch = values.clone();
        prop_assert_eq!(phi_cutoff_in_place(&mut scratch, s), phi);
    }

    #[test]
    fn build_hist_matches_hashmap(items in prop::collection::vec(0u64..300, 0..6000)) {
        let mut want: HashMap<u64, u64> = HashMap::new();
        for &x in &items {
            *want.entry(x).or_insert(0) += 1;
        }
        for hist in [build_hist(&items, 42), build_hist_hashmap(&items)] {
            prop_assert_eq!(hist.len(), want.len());
            for e in &hist {
                prop_assert_eq!(want.get(&e.item).copied(), Some(e.count));
            }
        }
    }

    #[test]
    fn css_roundtrips(bits in prop::collection::vec(any::<bool>(), 0..5000)) {
        let css = CompactedSegment::from_bits(&bits);
        prop_assert_eq!(css.len() as usize, bits.len());
        prop_assert_eq!(css.to_bits(), bits.clone());
        prop_assert_eq!(css.count_ones() as usize, bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn css_concat_is_bit_concat(
        a in prop::collection::vec(any::<bool>(), 0..2000),
        b in prop::collection::vec(any::<bool>(), 0..2000),
    ) {
        let ca = CompactedSegment::from_bits(&a);
        let cb = CompactedSegment::from_bits(&b);
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        prop_assert_eq!(ca.concat(&cb), CompactedSegment::from_bits(&joined));
    }
}
