//! Serialization round-trip laws for every persisted summary type.
//!
//! The persistence story rests on `decode(encode(s)) == s` being *exact* —
//! not "equivalent up to error bounds": a recovered engine must continue
//! the stream precisely as the original would have, and a historical query
//! must reproduce the live answer at the cut. These proptests drive each
//! summary with arbitrary update sequences and check:
//!
//! 1. the decoded value equals the original (`PartialEq`, which compares
//!    the full persistent state);
//! 2. the decoded value *behaves* identically when the stream continues;
//! 3. truncating the encoding at any point yields a typed error;
//! 4. corrupting bytes never panics — decoding either fails typed or, at
//!    the summary layer (which is checksum-free by design; the segment log
//!    adds CRC32), yields some other structurally valid value.

use proptest::prelude::*;

use psfa::prelude::*;

/// Drives an estimator/sketch with a deterministic stream derived from
/// `seed`, in `chunks`-sized minibatches.
fn stream_of(seed: u64, len: usize, universe: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Mild skew: a third of traffic on a handful of keys.
            let r = state >> 33;
            if r.is_multiple_of(3) {
                r % 8
            } else {
                r % universe
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mg_summary_roundtrip(
        seed in 1u64..u64::MAX,
        len in 0usize..4_000,
        capacity in 1usize..64,
    ) {
        let mut summary = MgSummary::new(capacity);
        for chunk in stream_of(seed, len, 500).chunks(97) {
            let mut counts = std::collections::HashMap::new();
            for &x in chunk {
                *counts.entry(x).or_insert(0u64) += 1;
            }
            let hist: Vec<psfa::primitives::HistogramEntry> = counts
                .into_iter()
                .map(|(item, count)| psfa::primitives::HistogramEntry { item, count })
                .collect();
            summary.augment(&hist);
        }
        let decoded = MgSummary::decode(&summary.encode()).expect("roundtrip");
        prop_assert_eq!(&decoded, &summary);
        // Deterministic bytes: encoding twice is identical.
        prop_assert_eq!(summary.encode(), decoded.encode());
    }

    #[test]
    fn heavy_hitter_tracker_roundtrip_and_continuation(
        seed in 1u64..u64::MAX,
        batches in 1usize..20,
    ) {
        let mut original = InfiniteHeavyHitters::new(0.05, 0.01);
        let stream = stream_of(seed, batches * 400, 2_000);
        for chunk in stream.chunks(400) {
            original.process_minibatch(chunk);
        }
        let decoded = InfiniteHeavyHitters::decode(&original.encode()).expect("roundtrip");
        prop_assert_eq!(&decoded, &original);
        prop_assert_eq!(decoded.query(), original.query());

        // Continuation law: the decoded tracker processes the future
        // exactly as the original (same histogram seed, same summary).
        let mut a = original.clone();
        let mut b = decoded;
        let future = stream_of(seed ^ 0xF00D, 1_200, 2_000);
        for chunk in future.chunks(300) {
            a.process_minibatch(chunk);
            b.process_minibatch(chunk);
        }
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.query(), b.query());
    }

    #[test]
    fn count_min_roundtrip_and_continuation(
        seed in 1u64..u64::MAX,
        cm_seed in 0u64..1_000,
        batches in 1usize..12,
    ) {
        let mut original = ParallelCountMin::new(0.01, 0.05, cm_seed);
        let stream = stream_of(seed, batches * 500, 3_000);
        for chunk in stream.chunks(500) {
            original.process_minibatch(chunk);
        }
        let decoded = ParallelCountMin::decode(&original.encode()).expect("roundtrip");
        prop_assert_eq!(&decoded, &original);
        for item in 0..64u64 {
            prop_assert_eq!(decoded.query(item), original.query(item));
        }
        // The decoded sketch remains mergeable with the original's lineage
        // (identical hash functions) and continues identically.
        let mut a = original.clone();
        let mut b = decoded;
        let future = stream_of(seed ^ 0xBEEF, 800, 3_000);
        a.process_minibatch(&future);
        b.process_minibatch(&future);
        prop_assert_eq!(&a, &b);
        let mut merged = a.clone();
        merged.merge(&b); // must not panic: same (ε, δ, seed)
        prop_assert_eq!(merged.total(), a.total() + b.total());
    }

    #[test]
    fn sliding_window_roundtrip_and_continuation(
        seed in 1u64..u64::MAX,
        batches in 1usize..15,
        n in 2_000u64..20_000,
    ) {
        let mut original = SlidingFreqWorkEfficient::new(0.01, n);
        let stream = stream_of(seed, batches * 350, 1_000);
        for chunk in stream.chunks(350) {
            original.process_minibatch(chunk);
        }
        let decoded = SlidingFreqWorkEfficient::decode(&original.encode()).expect("roundtrip");
        prop_assert_eq!(&decoded, &original);
        let mut ta = original.tracked_items();
        let mut tb = decoded.tracked_items();
        ta.sort_unstable();
        tb.sort_unstable();
        prop_assert_eq!(ta, tb);

        let mut a = original.clone();
        let mut b = decoded;
        let future = stream_of(seed ^ 0xCAFE, 700, 1_000);
        for chunk in future.chunks(233) {
            a.process_minibatch(chunk);
            b.process_minibatch(chunk);
        }
        prop_assert_eq!(&a, &b);
    }

    #[test]
    fn truncated_encodings_are_typed_errors_never_panics(
        seed in 1u64..u64::MAX,
        frac in 0.0f64..1.0,
    ) {
        let mut hh = InfiniteHeavyHitters::new(0.05, 0.01);
        let mut sliding = SlidingFreqWorkEfficient::new(0.01, 4_000);
        let mut cm = ParallelCountMin::new(0.02, 0.05, 9);
        let stream = stream_of(seed, 2_000, 800);
        for chunk in stream.chunks(400) {
            hh.process_minibatch(chunk);
            sliding.process_minibatch(chunk);
            cm.process_minibatch(chunk);
        }
        // A strict prefix is never a valid encoding — every decode must
        // fail with a typed error (and of course never panic).
        let bytes = hh.encode();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(InfiniteHeavyHitters::decode(&bytes[..cut]).is_err());
        let bytes = sliding.encode();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(SlidingFreqWorkEfficient::decode(&bytes[..cut]).is_err());
        let bytes = cm.encode();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(ParallelCountMin::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn corrupted_encodings_never_panic(
        seed in 1u64..u64::MAX,
        victim in 0usize..100_000,
        flip in 1u64..256,
    ) {
        let mut hh = InfiniteHeavyHitters::new(0.05, 0.01);
        let mut cm = ParallelCountMin::new(0.02, 0.05, 9);
        let stream = stream_of(seed, 1_500, 600);
        hh.process_minibatch(&stream);
        cm.process_minibatch(&stream);
        for bytes in [hh.encode(), cm.encode()] {
            let mut copy = bytes.clone();
            let at = victim % copy.len();
            copy[at] ^= flip as u8;
            // Either a typed error or a different-but-valid value; the
            // segment log's CRC32 is what detects silent flips on disk.
            let _ = InfiniteHeavyHitters::decode(&copy);
            let _ = ParallelCountMin::decode(&copy);
        }
    }
}

/// Store-level corruption: unlike the raw summary codec, the segment log is
/// checksummed, so *every* byte flip in a stored record is detected and
/// reported as a typed [`StoreError`] — never a panic, never silent.
#[test]
fn store_detects_every_single_byte_flip_in_a_record() {
    let dir = psfa::store::testutil::unique_temp_dir("roundtrip-crc");
    // Write one epoch through a real engine so the record is realistic (a
    // coarse Count-Min keeps the record small — this test rewrites the
    // segment once per sampled byte).
    let config = EngineConfig::with_shards(2)
        .heavy_hitters(0.05, 0.01)
        .count_min(0.01, 0.05, 5)
        .persistence(PersistenceConfig::new(&dir).interval_batches(u64::MAX / 2));
    let engine = Engine::spawn(config);
    let handle = engine.handle();
    handle
        .ingest(&(0..4_000u64).map(|i| i % 97).collect::<Vec<_>>())
        .unwrap();
    engine.drain().unwrap();
    handle.snapshot_now().unwrap();
    engine.kill();

    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "psfalog"))
        .expect("segment file exists");
    let pristine = std::fs::read(&segment).unwrap();

    // Flip a sample of bytes across the whole record (every 37th byte keeps
    // the test fast while covering header, frame, and payload regions).
    let mut detected = 0usize;
    let mut tried = 0usize;
    for at in (0..pristine.len()).step_by(17) {
        let mut copy = pristine.clone();
        copy[at] ^= 0x40;
        std::fs::write(&segment, &copy).unwrap();
        tried += 1;
        // Opening tolerates a torn *tail* but must never serve a flipped
        // record: either open reports corruption, or the damaged epoch is
        // simply no longer retained/loadable.
        match SnapshotStore::open(&dir, 8, 4) {
            Err(StoreError::Corrupt { .. }) | Err(StoreError::Codec(_)) => detected += 1,
            Err(other) => panic!("unexpected error class: {other}"),
            Ok(store) => match store.load(1) {
                Err(StoreError::Corrupt { .. })
                | Err(StoreError::Codec(_))
                | Err(StoreError::NoSuchEpoch(_)) => detected += 1,
                Err(other) => panic!("unexpected error class: {other}"),
                Ok(_) => panic!("byte flip at {at} served silently"),
            },
        }
    }
    assert_eq!(detected, tried, "every flip must be detected");
    std::fs::write(&segment, &pristine).unwrap();
    assert!(SnapshotStore::open(&dir, 8, 4).unwrap().load(1).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}
