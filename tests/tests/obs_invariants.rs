//! Invariants of the observability layer (PR 6): the telemetry must obey
//! the same algebraic and concurrency laws as the data plane it watches.
//!
//! * [`AtomicLogHistogram`] snapshots merge **exactly** commutatively and
//!   associatively (bucket-wise addition), and the canonical codec
//!   round-trips every distribution — the mergeable-summaries contract
//!   applied to latency histograms.
//! * Percentiles are **one-sided**: never below the true quantile, above
//!   it by at most one log-bucket (`2^-5` relative, exact below 32).
//! * [`TraceRing`] never tears: under many concurrent writers every
//!   drained event is internally consistent and sequence numbers are
//!   strictly increasing, even while the ring overwrites its oldest slots.
//! * Engine metrics stay sane **while** producers ingest: counters are
//!   monotone across reads, the obs report's histogram counts only grow,
//!   and every traced event carries a valid shard tag.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use psfa::obs::NO_SHARD;
use psfa::prelude::*;

// ---- histogram laws ----------------------------------------------------

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = AtomicLogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative_and_associative(
        xs in prop::collection::vec(0u64..u64::MAX, 0..200),
        ys in prop::collection::vec(0u64..u64::MAX, 0..200),
        zs in prop::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let (a, b, c) = (snapshot_of(&xs), snapshot_of(&ys), snapshot_of(&zs));

        // Commutative: a + b == b + a, byte-for-byte.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.encode(), ba.encode());

        // Associative: (a + b) + c == a + (b + c).
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c.encode(), a_bc.encode());

        // Merging equals recording the concatenation in one histogram.
        let mut all = Vec::new();
        all.extend_from_slice(&xs);
        all.extend_from_slice(&ys);
        all.extend_from_slice(&zs);
        prop_assert_eq!(a_bc.encode(), snapshot_of(&all).encode());
    }

    #[test]
    fn histogram_codec_round_trips(
        values in prop::collection::vec(0u64..u64::MAX, 0..300),
    ) {
        let snap = snapshot_of(&values);
        let decoded = HistogramSnapshot::decode(&snap.encode()).expect("decode");
        prop_assert_eq!(decoded.encode(), snap.encode());
        prop_assert_eq!(decoded.count(), values.len() as u64);
        let (p, q) = (snap.percentiles(), decoded.percentiles());
        prop_assert_eq!((p.p50, p.p90, p.p99, p.p999), (q.p50, q.p90, q.p99, q.p999));
    }

    #[test]
    fn histogram_percentiles_are_one_sided(
        values in prop::collection::vec(0u64..1_000_000_000u64, 1..300),
    ) {
        let snap = snapshot_of(&values);
        let mut values = values.clone();
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let reported = snap.percentile(q);
            prop_assert!(
                reported >= truth,
                "p{q}: reported {reported} below true {truth}"
            );
            // One log-bucket of overshoot: exact below 32, ≤ 2^-5 relative
            // above (plus 1 for the bucket's inclusive upper bound).
            let bound = truth + truth / 32 + 1;
            prop_assert!(
                reported <= bound,
                "p{q}: reported {reported} above bound {bound} (true {truth})"
            );
        }
    }
}

// ---- trace ring under fire ---------------------------------------------

#[test]
fn trace_ring_never_tears_under_concurrent_writers() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 5_000;
    // Small capacity on purpose: overwrite-oldest churns every slot.
    let ring = Arc::new(TraceRing::new(64));
    let mut threads = Vec::new();
    for w in 0..WRITERS {
        let ring = ring.clone();
        threads.push(std::thread::spawn(move || {
            for i in 0..PER_WRITER {
                // `b` is derived from `a`: a torn record (payload from two
                // different pushes) breaks the relation.
                let a = (w << 32) | i;
                ring.push(
                    a,
                    TraceKind::Boundary,
                    w as u32,
                    a,
                    a.wrapping_mul(0x9e37_79b9),
                );
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let events = ring.drain();
    assert!(!events.is_empty());
    assert!(events.len() <= ring.capacity());
    let mut last_seq = None;
    for e in &events {
        assert_eq!(e.b, e.a.wrapping_mul(0x9e37_79b9), "torn payload: {e:?}");
        assert_eq!(e.at_ns, e.a, "timestamp from a different push: {e:?}");
        assert_eq!(e.shard as u64, e.a >> 32, "shard from a different push");
        if let Some(prev) = last_seq {
            assert!(e.seq > prev, "sequence numbers must strictly increase");
        }
        last_seq = Some(e.seq);
    }
    // Conservation: every push was either retained, drained earlier (none
    // here), or counted as dropped/overwritten.
    assert_eq!(ring.recorded(), WRITERS * PER_WRITER);
    assert!(ring.recorded() >= events.len() as u64 + ring.dropped());
}

// ---- engine metrics under concurrent ingest ----------------------------

#[test]
fn engine_metrics_invariants_hold_under_concurrent_ingest() {
    const SHARDS: usize = 4;
    let engine = Engine::spawn(
        EngineConfig::with_shards(SHARDS)
            .queue_capacity(4)
            .heavy_hitters(0.02, 0.004)
            .sliding_window(20_000)
            .observe(),
    );
    let handle = engine.handle();
    let stop = Arc::new(AtomicBool::new(false));

    let mut producers = Vec::new();
    for seed in 0..3u64 {
        let handle = handle.clone();
        let stop = stop.clone();
        producers.push(std::thread::spawn(move || {
            let mut generator = ZipfGenerator::new(20_000, 1.3, seed + 1);
            while !stop.load(Ordering::Acquire) {
                handle.ingest(&generator.next_minibatch(1_000)).unwrap();
            }
        }));
    }

    // The sampler races the producers: every observed counter must be
    // monotone, and the obs report internally consistent.
    let mut last_processed = 0u64;
    let mut last_enqueue_count = 0u64;
    let mut last_republished = 0u64;
    for _ in 0..200 {
        let metrics = handle.metrics();
        let processed = metrics.items_processed();
        assert!(
            processed >= last_processed,
            "processed items went backwards"
        );
        last_processed = processed;
        assert!(metrics.items_enqueued() >= processed);
        let report = metrics.obs.expect("observability is on");
        let waits = report.percentiles("enqueue_wait").unwrap();
        assert!(waits.count >= last_enqueue_count, "histogram lost samples");
        last_enqueue_count = waits.count;
        let republished: u64 = ["membership", "boundary", "drain", "idle", "query_refresh"]
            .iter()
            .map(|r| report.counter(&format!("republish_{r}")).unwrap())
            .sum();
        assert!(
            republished >= last_republished,
            "republish count went backwards"
        );
        last_republished = republished;
        // Queries must stay answerable while under fire.
        let _ = handle.estimate(1);
        let _ = handle.heavy_hitters();
    }
    stop.store(true, Ordering::Release);
    for p in producers {
        p.join().unwrap();
    }
    engine.drain().unwrap();

    // Every traced event carries a valid shard tag and a known kind name.
    for event in handle.trace_events() {
        assert!(
            event.shard == NO_SHARD || (event.shard as usize) < SHARDS,
            "invalid shard tag: {event:?}"
        );
        assert!(!event.kind.name().is_empty());
    }

    // After the drain the aligned window exists and all kinds respond.
    assert!(handle.global_window().is_some());
    let report = handle.metrics().obs.unwrap();
    assert!(report.percentiles("batch_service").unwrap().count > 0);
    assert!(report.percentiles("publish_staleness").unwrap().count > 0);
    engine.shutdown().unwrap();
}
