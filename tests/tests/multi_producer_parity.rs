//! Multi-producer ingest parity: whatever combination of producer count
//! (1/2/4/8), routing policy (hash / skew-aware) and ingest mode (SPSC
//! lanes / thread-local substreams) feeds the engine, the answers must be
//! indistinguishable from a single-threaded run over the same stream:
//!
//! * **exact conservation** — every accepted item is counted exactly once
//!   (`total_items` equals the stream length, no loss, no double count);
//! * **one-sided `ε·m` accuracy** — estimates never exceed the true
//!   frequency and undershoot by at most `⌈ε·m⌉`, the Misra–Gries bound of
//!   Lemma 5.3 (the per-shard / per-substream errors are `ε·mᵢ` and the
//!   `mᵢ` sum to `m`, so the merged bound survives any partitioning);
//! * **heavy-hitter coverage** — every item with true frequency
//!   `≥ φ·m` is reported, and nothing below `(φ−ε)·m` sneaks in;
//! * **overestimate-only Count-Min band** — `cm_estimate` never dips
//!   below the true frequency.
//!
//! This is the acceptance test for the multi-producer front end: if lane
//! routing dropped a batch, a ticket double-counted, or a thread-local
//! substream were missed at merge time, conservation or the ε-band breaks.

use std::collections::HashMap;

use psfa::prelude::*;

const SHARDS: usize = 4;
const PHI: f64 = 0.02;
const EPSILON: f64 = 0.004;
const CM_EPSILON: f64 = 0.002;
const CM_DELTA: f64 = 0.01;
const BATCHES: usize = 48;
const BATCH_SIZE: usize = 4_000;

/// A Zipf(1.3) stream chopped into minibatches; skewed enough that both
/// the skew-aware router's hot-key splitting and the Misra–Gries pruning
/// actually fire.
fn minibatches(seed: u64) -> Vec<Vec<u64>> {
    let mut zipf = ZipfGenerator::new(50_000, 1.3, seed);
    (0..BATCHES)
        .map(|_| zipf.next_minibatch(BATCH_SIZE))
        .collect()
}

fn exact_truth(batches: &[Vec<u64>]) -> HashMap<u64, u64> {
    let mut truth = HashMap::new();
    for batch in batches {
        for &item in batch {
            *truth.entry(item).or_insert(0u64) += 1;
        }
    }
    truth
}

/// Runs `producers` concurrent [`Producer`]s over a fixed stream
/// (round-robin batch assignment) and checks every parity property
/// against the exact single-threaded truth.
fn run_parity(thread_local: bool, routing: RoutingPolicy, producers: usize) {
    let batches = minibatches(31 + producers as u64);
    let truth = exact_truth(&batches);
    let m: u64 = (BATCHES * BATCH_SIZE) as u64;

    let mut config = EngineConfig::with_shards(SHARDS)
        .routing(routing)
        .heavy_hitters(PHI, EPSILON)
        .count_min(CM_EPSILON, CM_DELTA, 5);
    if thread_local {
        config = config.thread_local_ingest();
    }
    let engine = Engine::spawn(config);
    let handle = engine.handle();

    std::thread::scope(|scope| {
        for k in 0..producers {
            let mut producer = handle.producer();
            let slice: Vec<&Vec<u64>> = batches.iter().skip(k).step_by(producers).collect();
            scope.spawn(move || {
                for batch in slice {
                    producer.ingest(batch).expect("engine closed mid-stream");
                }
                producer.flush();
            });
        }
    });
    engine.drain().unwrap();

    let mode = if thread_local {
        "thread-local"
    } else {
        "lanes"
    };
    let label = format!("{mode} mode, {producers} producers");

    // Exact conservation: no item lost in a lane, none double-counted by a
    // ticket, no substream missed at merge time.
    assert_eq!(
        handle.total_items(),
        m,
        "{label}: accepted items must be counted exactly once"
    );

    // One-sided ε·m accuracy against the exact truth, plus the
    // overestimate-only Count-Min band.
    let slack = (EPSILON * m as f64).ceil() as u64;
    for (&item, &f) in &truth {
        let est = handle.estimate(item);
        assert!(
            est <= f,
            "{label}: item {item} overestimated ({est} > true {f})"
        );
        assert!(
            est + slack >= f,
            "{label}: item {item} undershoots the ε·m band ({est} + {slack} < {f})"
        );
        let cm = handle.cm_estimate(item);
        assert!(
            cm >= f,
            "{label}: Count-Min underestimated item {item} ({cm} < true {f})"
        );
    }

    // Heavy-hitter coverage: everything φ-heavy is reported; nothing below
    // the (φ−ε)·m admission floor survives.
    let reported = handle.heavy_hitters();
    let heavy_floor = PHI * m as f64;
    for (&item, &f) in &truth {
        if f as f64 >= heavy_floor {
            assert!(
                reported.iter().any(|h| h.item == item),
                "{label}: φ-heavy item {item} (f = {f}) missing from heavy_hitters()"
            );
        }
    }
    let admission_floor = (PHI - EPSILON) * m as f64;
    for h in &reported {
        let f = truth.get(&h.item).copied().unwrap_or(0);
        assert!(
            f as f64 >= admission_floor,
            "{label}: reported item {} has true frequency {f} below (φ−ε)·m = {admission_floor}",
            h.item
        );
    }

    engine.shutdown().unwrap();
}

#[test]
fn lanes_hash_routing_matches_single_thread() {
    for producers in [1, 2, 4, 8] {
        run_parity(false, RoutingPolicy::Hash, producers);
    }
}

#[test]
fn lanes_skew_aware_routing_matches_single_thread() {
    for producers in [1, 2, 4, 8] {
        run_parity(false, RoutingPolicy::skew_aware(), producers);
    }
}

#[test]
fn thread_local_hash_routing_matches_single_thread() {
    for producers in [1, 2, 4, 8] {
        run_parity(true, RoutingPolicy::Hash, producers);
    }
}

#[test]
fn thread_local_skew_aware_routing_matches_single_thread() {
    for producers in [1, 2, 4, 8] {
        run_parity(true, RoutingPolicy::skew_aware(), producers);
    }
}

/// Queries racing thread-local producers mid-stream must only ever see
/// merged states that respect the invariants: estimates never exceed the
/// final true frequency (every published substream prefix underestimates
/// its own prefix), `total_items` is monotone, and the Count-Min band
/// stays above the Misra–Gries band for any item.
#[test]
fn thread_local_queries_merge_mid_stream() {
    let batches = minibatches(97);
    let truth = exact_truth(&batches);
    let engine = Engine::spawn(
        EngineConfig::with_shards(2)
            .thread_local_ingest()
            .heavy_hitters(PHI, EPSILON)
            .count_min(CM_EPSILON, CM_DELTA, 5),
    );
    let handle = engine.handle();
    let probes: Vec<u64> = {
        let mut items: Vec<(u64, u64)> = truth.iter().map(|(&i, &f)| (i, f)).collect();
        items.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
        items.iter().take(16).map(|&(i, _)| i).collect()
    };

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let done = &done;
        let handle = &handle;
        let truth = &truth;
        let probes = &probes;
        let querier = scope.spawn(move || {
            let mut last_total = 0u64;
            let mut rounds = 0u64;
            while !done.load(std::sync::atomic::Ordering::Acquire) {
                let total = handle.total_items();
                assert!(total >= last_total, "total_items went backwards");
                last_total = total;
                for &item in probes {
                    let est = handle.estimate(item);
                    assert!(
                        est <= truth[&item],
                        "mid-stream estimate of {item} exceeds final truth"
                    );
                    assert!(
                        handle.cm_estimate(item) >= est,
                        "Count-Min band dipped below Misra–Gries for {item}"
                    );
                }
                rounds += 1;
                std::thread::yield_now();
            }
            rounds
        });
        // Producers run to completion in an inner scope while the querier
        // hammers the merged view, then the querier is released.
        std::thread::scope(|inner| {
            for k in 0..2usize {
                let mut producer = handle.producer();
                let slice: Vec<&Vec<u64>> = batches.iter().skip(k).step_by(2).collect();
                inner.spawn(move || {
                    for batch in slice {
                        producer.ingest(batch).expect("engine closed mid-stream");
                    }
                    producer.flush();
                });
            }
        });
        done.store(true, std::sync::atomic::Ordering::Release);
        let rounds = querier.join().expect("querier panicked");
        assert!(rounds > 0, "querier never observed the stream");
    });
    engine.drain().unwrap();
    assert_eq!(handle.total_items(), (BATCHES * BATCH_SIZE) as u64);
    engine.shutdown().unwrap();
}
