//! Wire-protocol laws for the serving front end.
//!
//! The server and client each decode bytes produced by an untrusted peer,
//! so the protocol layer gets the same treatment as the persistence codecs
//! (see `store_roundtrip.rs`):
//!
//! 1. every request and response round-trips exactly through
//!    `decode(encode(x)) == x`;
//! 2. truncating an encoding at any point yields a typed [`CodecError`],
//!    never a panic;
//! 3. flipping any byte either fails typed or decodes to some other
//!    structurally valid message — it never panics and never drives an
//!    allocation from a corrupt length field;
//! 4. the frame layer rejects oversized length prefixes *before*
//!    allocating a receive buffer.

use proptest::prelude::*;

use psfa::primitives::CodecError;
use psfa::serve::protocol::{read_frame, write_frame};
use psfa::serve::{ErrorCode, FrameError, Request, Response, MAX_FRAME_LEN};

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        prop::collection::vec(any::<u64>(), 0..600).prop_map(Request::IngestBatch),
        any::<u64>().prop_map(Request::Estimate),
        any::<u64>().prop_map(Request::CmEstimate),
        Just(Request::HeavyHitters),
        any::<u64>().prop_map(Request::SlidingEstimate),
        Just(Request::SlidingHeavyHitters),
        Just(Request::Metrics),
    ]
}

/// Printable-ASCII strings up to `max` bytes (the vendored proptest has no
/// regex string strategies).
fn text_strategy(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0x20u8..0x7f, 0..max)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII"))
}

fn error_code_strategy() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::Shutdown),
        Just(ErrorCode::ConnectionLimit),
        Just(ErrorCode::BadRequest),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        any::<u64>().prop_map(|items| Response::IngestAck { items }),
        Just(Response::Busy),
        any::<u64>().prop_map(Response::Count),
        prop::collection::vec((any::<u64>(), any::<u64>()), 0..80).prop_map(|pairs| {
            Response::HeavyHitters(
                pairs
                    .into_iter()
                    .map(|(item, estimate)| psfa::prelude::HeavyHitter { item, estimate })
                    .collect(),
            )
        }),
        text_strategy(200).prop_map(Response::MetricsText),
        (error_code_strategy(), text_strategy(80))
            .prop_map(|(code, message)| Response::Error { code, message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_round_trip(request in request_strategy()) {
        let bytes = request.encode();
        prop_assert!(bytes.len() <= MAX_FRAME_LEN);
        prop_assert_eq!(Request::decode(&bytes).unwrap(), request);
    }

    #[test]
    fn responses_round_trip(response in response_strategy()) {
        let bytes = response.encode();
        prop_assert!(bytes.len() <= MAX_FRAME_LEN);
        prop_assert_eq!(Response::decode(&bytes).unwrap(), response);
    }

    #[test]
    fn truncated_requests_fail_typed(request in request_strategy(), cut in 0usize..4096) {
        let bytes = request.encode();
        let cut = cut % bytes.len().max(1);
        // Strictly shorter than a valid encoding: must be a typed error.
        prop_assert!(Request::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn truncated_responses_fail_typed(response in response_strategy(), cut in 0usize..8192) {
        let bytes = response.encode();
        let cut = cut % bytes.len().max(1);
        prop_assert!(Response::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn byte_flips_never_panic_requests(
        request in request_strategy(),
        pos in 0usize..4096,
        flip in 1u32..256,
    ) {
        let mut bytes = request.encode();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip as u8;
        // Either a typed CodecError or some other valid message; never a
        // panic (proptest treats a panic here as a failure) and never an
        // allocation driven by a corrupt count (decode validates lengths
        // against the remaining bytes before allocating).
        match Request::decode(&bytes) {
            Ok(decoded) => prop_assert_eq!(decoded.encode().len(), bytes.len()),
            Err(e) => {
                let _: CodecError = e;
            }
        }
    }

    #[test]
    fn byte_flips_never_panic_responses(
        response in response_strategy(),
        pos in 0usize..8192,
        flip in 1u32..256,
    ) {
        let mut bytes = response.encode();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip as u8;
        match Response::decode(&bytes) {
            // A flipped byte may still decode (e.g. inside a text body);
            // whatever comes out must itself round-trip.
            Ok(decoded) => prop_assert_eq!(
                Response::decode(&decoded.encode()).unwrap(),
                decoded
            ),
            Err(e) => {
                let _: CodecError = e;
            }
        }
    }

    #[test]
    fn frame_length_corruption_cannot_over_allocate(
        request in request_strategy(),
        huge in (MAX_FRAME_LEN as u32 + 1)..u32::MAX,
    ) {
        let payload = request.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        // Corrupt the length prefix to claim a giant payload.
        wire[..4].copy_from_slice(&huge.to_le_bytes());
        let mut buf = Vec::new();
        match read_frame(&mut wire.as_slice(), &mut buf) {
            Err(FrameError::Oversize { len }) => prop_assert_eq!(len, huge as usize),
            other => prop_assert!(false, "expected Oversize, got {:?}", other),
        }
        // The claimed length never reached an allocation.
        prop_assert!(buf.capacity() <= payload.len().max(16));
    }

    #[test]
    fn frames_round_trip_through_the_frame_layer(request in request_strategy()) {
        let payload = request.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut buf = Vec::new();
        let n = read_frame(&mut wire.as_slice(), &mut buf).unwrap().unwrap();
        prop_assert_eq!(&buf[..n], &payload[..]);
        prop_assert_eq!(Request::decode(&buf[..n]).unwrap(), request);
    }
}
