//! Concurrent stress test of the lock-free ingest hot path: query threads
//! hammer `estimate` / `cm_estimate` / `heavy_hitters` / the sliding
//! window *while* four producers ingest through their own per-shard SPSC
//! lanes (`EngineHandle::producer`), guarding the lock-free snapshot
//! publication and relaxed-atomic Count-Min against torn reads:
//!
//! * per-shard snapshot **epochs are monotone** across reads, and every
//!   snapshot is internally consistent (entries sorted, `stream_len`
//!   matching the epoch's progression);
//! * the Count-Min sketch **never reads below** what any observed snapshot
//!   reflects (the publication `Release`/`Acquire` edge), and after a drain
//!   it is overestimate-only against an exact reference;
//! * a `snapshot_now` cut **mid-stress** round-trips: recovery from it
//!   reproduces the persisted answers exactly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use psfa::prelude::*;

const PHI: f64 = 0.02;
const EPSILON: f64 = 0.004;
const CM_EPSILON: f64 = 0.002;
const CM_DELTA: f64 = 0.01;
const SHARDS: usize = 4;
const WINDOW: u64 = 40_000;
const PANES: usize = 8;

fn config() -> EngineConfig {
    EngineConfig::with_shards(SHARDS)
        .queue_capacity(8)
        .heavy_hitters(PHI, EPSILON)
        .count_min(CM_EPSILON, CM_DELTA, 77)
        .sliding_window(WINDOW)
        .window_panes(PANES)
}

fn zipf_batches(batches: usize, batch_size: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut generator = ZipfGenerator::new(50_000, 1.4, seed);
    (0..batches)
        .map(|_| generator.next_minibatch(batch_size))
        .collect()
}

#[test]
fn concurrent_queries_during_ingest_never_tear() {
    let dir = psfa::store::testutil::unique_temp_dir("hotpath-stress");
    // Manual snapshots only: the mid-stress cut below is the one epoch.
    let config = config().persistence(PersistenceConfig::new(&dir).interval_batches(u64::MAX / 2));
    let engine = Engine::spawn(config.clone());
    let handle = engine.handle();

    let batches = zipf_batches(160, 4_000, 9);
    let truth: HashMap<u64, u64> = {
        let mut t = HashMap::new();
        for b in &batches {
            for &x in b {
                *t.entry(x).or_insert(0u64) += 1;
            }
        }
        t
    };
    let total: u64 = batches.iter().map(|b| b.len() as u64).sum();

    // --- query threads hammering the live surfaces ---------------------
    let stop = Arc::new(AtomicBool::new(false));
    let mut queriers = Vec::new();
    for q in 0..3u64 {
        let handle = handle.clone();
        let stop = stop.clone();
        queriers.push(std::thread::spawn(move || {
            let mut last_epochs = [0u64; SHARDS];
            let mut last_window_seq = 0u64;
            let mut rounds = 0u64;
            while !stop.load(Ordering::Acquire) {
                // Snapshot invariants: monotone epochs, sorted entries,
                // stream length moving with the epoch.
                for (shard, snapshot) in handle.snapshots().into_iter().enumerate() {
                    assert!(
                        snapshot.epoch >= last_epochs[shard],
                        "shard {shard} epoch went backwards: {} < {}",
                        snapshot.epoch,
                        last_epochs[shard]
                    );
                    last_epochs[shard] = snapshot.epoch;
                    assert!(
                        snapshot.hh_entries.windows(2).all(|w| w[0].0 < w[1].0),
                        "shard {shard} snapshot entries not strictly item-sorted"
                    );
                    assert!(
                        (snapshot.epoch == 0) == (snapshot.stream_len == 0),
                        "shard {shard}: epoch {} with stream_len {}",
                        snapshot.epoch,
                        snapshot.stream_len
                    );
                }
                // The relaxed-atomic Count-Min can never read below a
                // published Misra–Gries estimate: the sketch already holds
                // every batch at or before the snapshot's epoch.
                for probe in (q * 17)..(q * 17 + 50) {
                    let est = handle.estimate(probe);
                    let cm = handle.cm_estimate(probe);
                    assert!(
                        cm >= est,
                        "count-min {cm} below snapshot estimate {est} for key {probe}"
                    );
                }
                // Merged heavy hitters stay sorted and deduplicated.
                let hh = handle.heavy_hitters();
                assert!(hh.windows(2).all(|w| w[0].estimate >= w[1].estimate));
                let mut items: Vec<u64> = hh.iter().map(|h| h.item).collect();
                items.sort_unstable();
                items.dedup();
                assert_eq!(items.len(), hh.len(), "duplicate heavy hitter reported");
                // The aligned window only moves forward. (Its item count
                // may overshoot `WINDOW` by up to a batch per pane:
                // boundaries are cut at batch granularity.)
                if let Some(window) = handle.global_window() {
                    assert!(
                        window.seq() >= last_window_seq,
                        "window boundary went backwards"
                    );
                    last_window_seq = window.seq();
                    assert!(window.items() <= WINDOW + (PANES * 4_000) as u64);
                }
                rounds += 1;
            }
            rounds
        }));
    }

    // --- four lane producers + one mid-stress snapshot ------------------
    // Each producer owns a set of per-shard SPSC lanes (`handle.producer()`),
    // so this also stresses the gated-cut protocol: the snapshot below must
    // drain every lane exactly to its mark before cutting.
    let mid = batches.len() / 2;
    let (first_half, second_half) = batches.split_at(mid);
    let ingest_all = |chunk: &[Vec<u64>]| {
        std::thread::scope(|scope| {
            for k in 0..4usize {
                let mut producer = handle.producer();
                scope.spawn(move || {
                    assert_eq!(producer.mode(), "lanes");
                    for batch in chunk.iter().skip(k).step_by(4) {
                        producer.ingest(batch).expect("engine closed");
                    }
                    // Dropping the producer closes its lanes; the pushes are
                    // already visible, so the cut below covers all of them
                    // without an explicit flush.
                });
            }
        });
    };
    ingest_all(first_half);
    // Cut an epoch while the queriers are still hammering.
    let epoch = handle.snapshot_now().expect("mid-stress snapshot");
    let persisted_items = {
        // The cut is consistent: it covers exactly the first half (both
        // producers joined before the cut).
        let view = handle.view_at(epoch).expect("persisted epoch view");
        view.total_items()
    };
    assert_eq!(
        persisted_items,
        first_half.iter().map(|b| b.len() as u64).sum::<u64>()
    );
    ingest_all(second_half);
    engine.drain().unwrap();

    stop.store(true, Ordering::Release);
    let rounds: u64 = queriers.into_iter().map(|q| q.join().unwrap()).sum();
    assert!(rounds > 0, "query threads never observed the stream");

    // --- drained accuracy: the lock-free surfaces answer exactly --------
    assert_eq!(handle.total_items(), total);
    let slack = (EPSILON * total as f64).ceil() as u64;
    let cm_band = (CM_EPSILON * total as f64).ceil() as u64;
    let mut cm_violations = 0usize;
    for (&item, &f) in &truth {
        let est = handle.estimate(item);
        assert!(est <= f, "estimate {est} above truth {f}");
        assert!(est + slack >= f, "estimate {est} under {f} by more than εm");
        let cm = handle.cm_estimate(item);
        assert!(cm >= f, "count-min {cm} underestimates exact {f}");
        if cm > f + cm_band {
            cm_violations += 1;
        }
    }
    assert!(
        cm_violations <= truth.len() / 20,
        "{cm_violations}/{} items exceeded the ε_cm·m band",
        truth.len()
    );

    // --- the mid-stress snapshot round-trips through recovery -----------
    let persisted_hh = handle.heavy_hitters_at(epoch).expect("historical query");
    engine.kill();
    let recovered = Engine::recover(&dir, config).expect("recovery from the stress snapshot");
    let handle2 = recovered.handle();
    assert_eq!(handle2.total_items(), persisted_items);
    assert_eq!(handle2.heavy_hitters(), persisted_hh);
    // The recovered engine keeps serving and snapshotting.
    handle2.ingest(&zipf_batches(1, 2_000, 10)[0]).unwrap();
    recovered.drain().unwrap();
    assert_eq!(handle2.snapshot_now().unwrap(), epoch + 1);
    assert_eq!(handle2.heavy_hitters_at(epoch).unwrap(), persisted_hh);
    recovered.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lazy_publication_is_always_fresh_after_drain() {
    // Interleave ingest and drain repeatedly: after every drain the
    // published state must account for every accepted item — the lazy
    // publication may defer under load but a barrier always flushes it.
    let engine = Engine::spawn(
        EngineConfig::with_shards(2)
            .heavy_hitters(PHI, EPSILON)
            .count_min(CM_EPSILON, CM_DELTA, 3),
    );
    let handle = engine.handle();
    let mut total = 0u64;
    let mut hot_truth = 0u64;
    for round in 0..50u64 {
        // One hot key keeps MG membership stable, so the worker's
        // membership-change trigger stays silent and only the idle/barrier
        // publication path can keep this test passing. Cold keys live far
        // from the hot key so no round ever collides with it.
        let batch: Vec<u64> = (0..500)
            .map(|i| if i % 2 == 0 { 7 } else { 1_000_000 + round })
            .collect();
        hot_truth += 250;
        total += batch.len() as u64;
        handle.ingest(&batch).unwrap();
        engine.drain().unwrap();
        assert_eq!(handle.total_items(), total, "round {round}: stale snapshot");
        let est = handle.estimate(7);
        let slack = (EPSILON * total as f64).ceil() as u64;
        assert!(est <= hot_truth && est + slack >= hot_truth);
        assert!(handle.cm_estimate(7) >= hot_truth);
    }
    engine.shutdown().unwrap();
}
