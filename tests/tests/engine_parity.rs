//! The sharded engine must be *equivalent* to the single-threaded pipeline:
//! same input stream, same (φ, ε), same guarantees. These tests drive both
//! paths on one Zipf workload and compare them to each other and to exact
//! counts, then exercise queries racing live ingestion.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use psfa::prelude::*;

const PHI: f64 = 0.02;
const EPSILON: f64 = 0.004;

fn zipf_batches(batches: usize, batch_size: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut generator = ZipfGenerator::new(100_000, 1.2, seed);
    (0..batches)
        .map(|_| generator.next_minibatch(batch_size))
        .collect()
}

fn exact_counts(batches: &[Vec<u64>]) -> HashMap<u64, u64> {
    let mut exact = HashMap::new();
    for batch in batches {
        for &x in batch {
            *exact.entry(x).or_insert(0u64) += 1;
        }
    }
    exact
}

#[test]
fn sharded_ingestion_matches_single_threaded_pipeline_within_epsilon() {
    let batches = zipf_batches(40, 5_000, 2024);
    let truth = exact_counts(&batches);
    let m: u64 = truth.values().sum();

    // Single-threaded reference: the pipeline driver with the paper's
    // operators.
    let mut single_hh = HeavyHitterOperator::new("hh", InfiniteHeavyHitters::new(PHI, EPSILON));
    let mut single_cm = SketchOperator::new("cm", ParallelCountMin::new(0.001, 0.01, 7));
    for batch in &batches {
        single_hh.process(batch);
        single_cm.process(batch);
    }

    // Sharded engine on the same input.
    let engine = Engine::spawn(
        EngineConfig::with_shards(4)
            .heavy_hitters(PHI, EPSILON)
            .count_min(0.001, 0.01, 7),
    );
    let handle = engine.handle();
    for batch in &batches {
        handle.ingest(batch).unwrap();
    }
    engine.drain().unwrap();
    assert_eq!(handle.total_items(), m);

    // Point estimates: both paths are one-sided within εm of the truth, so
    // they are within εm of each other.
    let slack = (EPSILON * m as f64).ceil() as u64;
    for (&item, &f) in &truth {
        let sharded = handle.estimate(item);
        let single = single_hh.tracker().estimator().estimate(item);
        assert!(sharded <= f, "sharded estimate {sharded} above truth {f}");
        assert!(
            sharded + slack >= f,
            "sharded estimate {sharded} under truth {f} - εm"
        );
        assert!(
            sharded.abs_diff(single) <= slack,
            "sharded {sharded} and single-threaded {single} differ by more than εm = {slack}"
        );
    }

    // Heavy hitters: identical completeness/soundness bands around φ.
    let sharded_hh: Vec<u64> = handle.heavy_hitters().iter().map(|h| h.item).collect();
    let single_set: Vec<u64> = single_hh.tracker().query().iter().map(|h| h.item).collect();
    for (&item, &f) in &truth {
        if f as f64 >= PHI * m as f64 {
            assert!(
                sharded_hh.contains(&item),
                "engine missed heavy hitter {item}"
            );
            assert!(
                single_set.contains(&item),
                "pipeline missed heavy hitter {item}"
            );
        }
        if (f as f64) < (PHI - EPSILON) * m as f64 {
            assert!(!sharded_hh.contains(&item), "engine false positive {item}");
        }
    }

    // Count-Min: merged shard sketches equal the single sketch exactly
    // (same seed, partitioned input).
    let merged = handle.merged_count_min();
    assert_eq!(merged.total(), single_cm.sketch().total());
    assert_eq!(
        merged.sketch().counters(),
        single_cm.sketch().sketch().counters()
    );

    // The post-shutdown merged estimator also covers the whole stream.
    let report = engine.shutdown().unwrap();
    let merged_est = report.merged_estimator();
    assert_eq!(merged_est.stream_len(), m);
    for (&item, &f) in &truth {
        let est = merged_est.estimate(item);
        assert!(est <= f);
        assert!(est + slack >= f);
    }
}

/// The acceptance test for skew-aware routing: on a Zipf(1.5) stream (whose
/// head key alone carries ~38% of all traffic) the skew-aware router must
/// measurably level per-shard load versus hash routing, while every answer
/// stays within the configured ε of the single-threaded pipeline.
#[test]
fn skew_aware_router_levels_load_and_matches_single_thread() {
    let mut generator = ZipfGenerator::new(100_000, 1.5, 4242);
    let batches: Vec<Vec<u64>> = (0..40).map(|_| generator.next_minibatch(5_000)).collect();
    let truth = exact_counts(&batches);
    let m: u64 = truth.values().sum();
    let slack = (EPSILON * m as f64).ceil() as u64;

    // Single-threaded reference on the same stream.
    let mut single = InfiniteHeavyHitters::new(PHI, EPSILON);
    for batch in &batches {
        single.process_minibatch(batch);
    }

    let run = |routing: RoutingPolicy| {
        let engine = Engine::spawn(
            EngineConfig::with_shards(4)
                .heavy_hitters(PHI, EPSILON)
                .routing(routing),
        );
        let handle = engine.handle();
        for batch in &batches {
            handle.ingest(batch).unwrap();
        }
        engine.drain().unwrap();
        let metrics = handle.metrics();
        let estimates: HashMap<u64, u64> = truth
            .keys()
            .map(|&item| (item, handle.estimate(item)))
            .collect();
        let hh: Vec<u64> = handle.heavy_hitters().iter().map(|h| h.item).collect();
        // The post-shutdown merged estimator must cover the whole stream
        // under either router: MgSummary::merge adds counters item-wise, so
        // a hot key's fragments recombine with the merged-ε bound.
        let report = engine.shutdown().unwrap();
        let merged = report.merged_estimator();
        assert_eq!(merged.stream_len(), m);
        for (&item, &f) in &truth {
            let est = merged.estimate(item);
            assert!(est <= f, "merged estimate {est} above truth {f}");
            assert!(
                est + slack >= f,
                "merged estimate {est} under truth {f} - εm"
            );
        }
        (metrics, estimates, hh)
    };

    let (hash_metrics, ..) = run(RoutingPolicy::Hash);
    let (skew_metrics, estimates, hh) = run(RoutingPolicy::skew_aware());

    // Answer parity: one-sided within εm of the truth and within εm of the
    // single-threaded reference, exactly as under hash routing.
    for (&item, &f) in &truth {
        let sharded = estimates[&item];
        assert!(
            sharded <= f,
            "skew-routed estimate {sharded} above truth {f}"
        );
        assert!(
            sharded + slack >= f,
            "skew-routed estimate {sharded} under truth {f} - εm"
        );
        let reference = single.estimator().estimate(item);
        assert!(
            sharded.abs_diff(reference) <= slack,
            "skew-routed {sharded} and single-threaded {reference} differ by more than εm"
        );
    }

    // Heavy hitters keep the (φ, ε) bands, with no per-fragment duplicates.
    for (&item, &f) in &truth {
        if f as f64 >= PHI * m as f64 {
            assert!(hh.contains(&item), "skew engine missed heavy hitter {item}");
        }
        if (f as f64) < (PHI - EPSILON) * m as f64 {
            assert!(!hh.contains(&item), "skew engine false positive {item}");
        }
    }
    let mut unique = hh.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), hh.len(), "replicated keys reported once");

    // The load win: the head keys were promoted and the busiest shard's
    // share dropped measurably below hash routing's.
    assert!(
        !skew_metrics.hot_keys.is_empty(),
        "Zipf(1.5) head keys must be promoted"
    );
    let hash_imbalance = hash_metrics.load_imbalance().unwrap();
    let skew_imbalance = skew_metrics.load_imbalance().unwrap();
    assert!(
        skew_imbalance < hash_imbalance,
        "skew-aware imbalance {skew_imbalance:.3} must beat hash imbalance {hash_imbalance:.3}"
    );
    assert!(
        skew_imbalance < 0.75 * hash_imbalance,
        "the win must be substantial, not noise: skew {skew_imbalance:.3} vs hash {hash_imbalance:.3}"
    );
}

#[test]
fn queries_answer_while_ingestion_is_in_flight() {
    let engine = Engine::spawn(
        EngineConfig::with_shards(4)
            .queue_capacity(4)
            .heavy_hitters(0.02, 0.005)
            .sliding_window(200_000),
    );
    let done = Arc::new(AtomicBool::new(false));

    // Two producers pushing 30 batches of 5k each through cloned handles.
    let mut producers = Vec::new();
    for p in 0..2u64 {
        let handle = engine.handle();
        producers.push(std::thread::spawn(move || {
            let mut generator = ZipfGenerator::new(50_000, 1.3, 100 + p);
            let mut sent = 0u64;
            for _ in 0..30 {
                let batch = generator.next_minibatch(5_000);
                sent += batch.len() as u64;
                handle
                    .ingest(&batch)
                    .expect("engine must accept while running");
            }
            sent
        }));
    }

    // Query loop racing the producers: totals, epochs, and the aligned
    // window boundary must be monotone, and every query style must answer
    // without blocking on ingestion.
    let queries = {
        let handle = engine.handle();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut last_total = 0u64;
            let mut last_epochs = vec![0u64; handle.shards()];
            let mut last_window_seq = 0u64;
            let mut observed_mid_ingest = 0u64;
            while !done.load(Ordering::Acquire) {
                let total = handle.total_items();
                assert!(total >= last_total, "total items went backwards");
                let epochs = handle.epochs();
                for (now, before) in epochs.iter().zip(&last_epochs) {
                    assert!(now >= before, "shard epoch went backwards");
                }
                let hh = handle.heavy_hitters();
                for pair in hh.windows(2) {
                    assert!(
                        pair[0].estimate >= pair[1].estimate,
                        "heavy hitters unsorted"
                    );
                }
                // Zipf(1.3)'s head item is always heavy once data flows.
                if total > 20_000 {
                    assert!(!hh.is_empty(), "no heavy hitters at m = {total}");
                    assert!(handle.estimate(hh[0].item) > 0);
                    assert!(handle.cm_estimate(hh[0].item) >= handle.estimate(hh[0].item));
                }
                // The sliding surface answers concurrently; before the
                // first boundary it reports "no aligned window" rather
                // than a wrong number, and the aligned boundary only
                // moves forward.
                if let Some(window) = handle.global_window() {
                    assert!(
                        window.seq() >= last_window_seq,
                        "aligned window went backwards"
                    );
                    last_window_seq = window.seq();
                    assert!(window.items() > 0);
                    let _ = handle.sliding_estimate(hh.first().map_or(0, |h| h.item));
                    let _ = handle.sliding_heavy_hitters();
                }
                // Count only rounds that genuinely raced live ingestion:
                // some data had arrived but the full 300k had not.
                if total > 0 && total < 300_000 {
                    observed_mid_ingest += 1;
                }
                last_total = total;
                last_epochs = epochs;
                std::thread::yield_now();
            }
            observed_mid_ingest
        })
    };

    let sent: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
    engine.drain().unwrap();
    done.store(true, Ordering::Release);
    let mid_ingest_queries = queries.join().unwrap();

    assert_eq!(sent, 300_000);
    let handle = engine.handle();
    assert_eq!(handle.total_items(), sent);
    assert_eq!(handle.metrics().items_processed(), sent);
    assert!(
        mid_ingest_queries > 0,
        "the query thread never observed the engine mid-ingest; \
         increase the workload if this machine got faster"
    );
    // After the drain every shard is aligned to the latest boundary:
    // 300k items at slide 25k ⇒ boundary 12, window = the last 8 panes.
    // With concurrent producers a boundary can overshoot its exact
    // multiple (batches recorded between the crossing and the cut land in
    // the earlier pane), so the 8-pane window covers *about* 200k items —
    // its exact count is reported, never guessed.
    let window = handle.global_window().expect("aligned window after drain");
    assert_eq!(window.seq(), 12);
    assert!(
        window.items() <= 200_000 && window.items() >= 150_000,
        "8 panes of ~25k items, got {}",
        window.items()
    );
    let hh = handle.heavy_hitters();
    assert!(handle.sliding_estimate(hh[0].item) > 0);
    let metrics = handle.metrics();
    let wm = metrics.window.expect("window metrics");
    assert_eq!((wm.boundaries, wm.max_shard_lag), (12, 0));
    let report = engine.shutdown().unwrap();
    assert_eq!(report.total_items(), sent);
}

#[test]
fn lifted_operators_partition_the_stream() {
    // Lift the sequential exact window tracker into the engine: per-shard
    // instances see disjoint keys whose union is the full stream.
    struct ExactOp(ExactSlidingWindow);
    impl MinibatchOperator for ExactOp {
        fn process(&mut self, minibatch: &[u64]) {
            self.0.process_minibatch(minibatch);
        }
        fn name(&self) -> String {
            "exact".into()
        }
    }

    let batches = zipf_batches(10, 2_000, 7);
    let truth = exact_counts(&batches);
    let engine = Engine::builder(EngineConfig::with_shards(4).heavy_hitters(0.05, 0.01))
        .lift(("exact".to_string(), |_shard: usize| {
            ExactOp(ExactSlidingWindow::new(1 << 20))
        }))
        .spawn();
    let handle = engine.handle();
    for batch in &batches {
        handle.ingest(batch).unwrap();
    }
    let report = engine.shutdown().unwrap();

    // One lifted instance per shard, correctly labelled.
    assert_eq!(report.shards.len(), 4);
    for fin in &report.shards {
        assert_eq!(fin.lifted.len(), 1);
        assert_eq!(fin.lifted[0].0, "exact");
        assert_eq!(fin.lifted[0].1.name(), "exact");
    }
    // Each key's estimate lives on its owning shard and nowhere else, and
    // shard stream lengths partition the input.
    for (&item, &count) in &truth {
        let owner = shard_of(item, 4);
        assert!(
            report.shards[owner]
                .heavy_hitters
                .estimator()
                .estimate(item)
                <= count
        );
        for (shard, fin) in report.shards.iter().enumerate() {
            if shard != owner {
                assert_eq!(
                    fin.heavy_hitters.estimator().estimate(item),
                    0,
                    "item {item} leaked onto shard {shard}"
                );
            }
        }
    }
    let total: u64 = report.shards.iter().map(|s| s.items).sum();
    assert_eq!(total, truth.values().sum::<u64>());
}
