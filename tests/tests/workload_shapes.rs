//! Cross-crate tests of the workload substrate against the aggregates: the
//! generators must produce the stream shapes the experiments assume, and the
//! aggregates must behave sensibly on each of them.

use psfa::prelude::*;

#[test]
fn zipf_stream_has_heavy_hitters_and_uniform_does_not() {
    let phi = 0.05;
    let epsilon = 0.01;

    let mut zipf_tracker = InfiniteHeavyHitters::new(phi, epsilon);
    let mut zipf = ZipfGenerator::new(100_000, 1.4, 1);
    for _ in 0..20 {
        zipf_tracker.process_minibatch(&zipf.next_minibatch(5000));
    }
    assert!(
        !zipf_tracker.query().is_empty(),
        "a Zipf(1.4) stream must contain 5%-heavy hitters"
    );

    let mut uni_tracker = InfiniteHeavyHitters::new(phi, epsilon);
    let mut uniform = UniformGenerator::new(100_000, 2);
    for _ in 0..20 {
        uni_tracker.process_minibatch(&uniform.next_minibatch(5000));
    }
    assert!(
        uni_tracker.query().is_empty(),
        "a uniform stream over 100k items has no 5%-heavy hitters"
    );
}

#[test]
fn bursty_stream_heavy_hitter_appears_and_then_expires_from_window() {
    let n = 8192u64;
    let epsilon = 0.02;
    let mut est = SlidingFreqWorkEfficient::new(epsilon, n);
    let mut generator = BurstyGenerator::new(1_000_000, 4096, 3);

    // Quiet phase then burst phase.
    est.process_minibatch(&generator.next_minibatch(4096));
    let burst = generator.next_minibatch(4096);
    est.process_minibatch(&burst);
    // The dominant item of the burst must now be a heavy hitter of the window.
    let mut counts = std::collections::HashMap::new();
    for &x in &burst {
        *counts.entry(x).or_insert(0u64) += 1;
    }
    let (&burst_item, &burst_count) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
    assert!(burst_count > 3000);
    assert!(est.estimate(burst_item) > 0);

    // After two full windows of quiet traffic the burst item must have expired.
    for _ in 0..4 {
        est.process_minibatch(&generator.next_minibatch(4096));
    }
    for _ in 0..4 {
        // Skip ahead to quiet phases only (phases alternate every 4096 items).
        let batch = generator.next_minibatch(4096);
        est.process_minibatch(&batch);
    }
    assert!(
        est.estimate(burst_item) <= burst_count,
        "expired burst item must not gain frequency"
    );
}

#[test]
fn packet_trace_elephants_dominate_count_min_queries() {
    let mut trace = PacketTraceGenerator::new(64, 5);
    let mut cm = ParallelCountMin::new(0.0005, 0.01, 1);
    let mut exact = std::collections::HashMap::new();
    for _ in 0..20 {
        let batch = trace.next_minibatch(10_000);
        cm.process_minibatch(&batch);
        for &x in &batch {
            *exact.entry(x).or_insert(0u64) += 1;
        }
    }
    let (&top_flow, &top_count) = exact.iter().max_by_key(|(_, &c)| c).unwrap();
    assert!(cm.query(top_flow) >= top_count);
    // The heaviest flow's estimate dominates a random light flow's estimate.
    let light_flow = *exact.iter().find(|(_, &c)| c <= 3).map(|(f, _)| f).unwrap();
    assert!(cm.query(top_flow) > cm.query(light_flow));
}

#[test]
fn work_meter_shows_linear_work_in_stream_length() {
    // Corollary 5.11 at the API level: doubling the number of identically
    // sized minibatches roughly doubles the charged work.
    let eps = 0.01;
    let mut generator = ZipfGenerator::new(10_000, 1.1, 9);
    let batches: Vec<Vec<u64>> = (0..20).map(|_| generator.next_minibatch(2000)).collect();

    let run = |count: usize| {
        let meter = WorkMeter::new();
        let mut est = ParallelFrequencyEstimator::new(eps).with_meter(meter.clone());
        for b in &batches[..count] {
            est.process_minibatch(b);
        }
        meter.total()
    };
    let half = run(10);
    let full = run(20);
    let ratio = full as f64 / half as f64;
    assert!(
        (1.6..=2.4).contains(&ratio),
        "work should scale linearly with the stream length, ratio = {ratio}"
    );
}
