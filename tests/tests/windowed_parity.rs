//! The acceptance test for globally consistent sliding windows: the
//! engine's aligned-window answers must match a single-threaded *exact*
//! sliding window over the same global stream, within the paper's
//! one-sided `ε·n_W` bound — under skew-aware routing, where per-shard
//! substreams are maximally uneven (the hot key is dealt round-robin
//! across every shard), and identically under plain hash routing.
//!
//! The stream is driven by a single producer with the batch size equal to
//! the window slide, so every boundary lands exactly between two ingest
//! calls and the aligned window covers a *known* item range: the exact
//! baseline fed the same batches covers precisely the same items.

use std::collections::HashMap;

use psfa::prelude::*;

const SHARDS: usize = 4;
const PHI: f64 = 0.02;
const EPSILON: f64 = 0.004;
const WINDOW: u64 = 20_000;
const PANES: usize = 8;
const SLIDE: usize = (WINDOW as usize) / PANES; // 2500: one boundary per batch
const BATCHES: usize = 32;

fn run(routing: RoutingPolicy) {
    let engine = Engine::spawn(
        EngineConfig::with_shards(SHARDS)
            .heavy_hitters(PHI, EPSILON)
            .sliding_window(WINDOW)
            .window_panes(PANES)
            .routing(routing.clone()),
    );
    let handle = engine.handle();
    let mut generator = ZipfGenerator::new(50_000, 1.5, 777);
    let mut exact = ExactSlidingWindow::new(WINDOW);
    let checkpoints = [1usize, 4, 8, 16, 24, 32];

    for t in 1..=BATCHES {
        let batch = generator.next_minibatch(SLIDE);
        handle.ingest(&batch).unwrap();
        exact.process_minibatch(&batch);
        if !checkpoints.contains(&t) {
            continue;
        }
        engine.drain().unwrap();

        // The aligned cut: boundary t, covering the last min(t, 8) panes —
        // exactly the items the exact window holds.
        let window = handle
            .global_window()
            .unwrap_or_else(|| panic!("{}: no aligned window at boundary {t}", routing.name()));
        assert_eq!(window.seq(), t as u64, "{}: wrong boundary", routing.name());
        let n_w = (t.min(PANES) * SLIDE) as u64;
        assert_eq!(
            window.items(),
            n_w,
            "{}: wrong window coverage",
            routing.name()
        );
        assert_eq!(exact.len() as u64, n_w, "baseline covers the same items");

        // Point parity on every key alive in the window: one-sided, within
        // ε·n_W of the exact count.
        let truth: HashMap<u64, u64> = exact.entries().into_iter().collect();
        let slack = (EPSILON * n_w as f64).ceil() as u64;
        for (&item, &f) in &truth {
            let est = window.estimate(item);
            assert!(
                est <= f,
                "{} boundary {t}: window estimate {est} above exact {f} for {item}",
                routing.name()
            );
            assert!(
                est + slack >= f,
                "{} boundary {t}: window estimate {est} under exact {f} for {item} \
                 by more than ε·n_W = {slack}",
                routing.name()
            );
        }

        // Heavy-hitter parity: completeness above φ·n_W, soundness below
        // (φ − ε)·n_W, sorted most frequent first.
        let reported = handle.sliding_heavy_hitters();
        for pair in reported.windows(2) {
            assert!(pair[0].estimate >= pair[1].estimate, "unsorted");
        }
        let reported_items: Vec<u64> = reported.iter().map(|h| h.item).collect();
        for (&item, &f) in &truth {
            if f as f64 >= PHI * n_w as f64 {
                assert!(
                    reported_items.contains(&item),
                    "{} boundary {t}: missed window heavy hitter {item} (f = {f}, n_W = {n_w})",
                    routing.name()
                );
            }
            if (f as f64) < (PHI - EPSILON) * n_w as f64 {
                assert!(
                    !reported_items.contains(&item),
                    "{} boundary {t}: false positive {item} (f = {f})",
                    routing.name()
                );
            }
        }
        // Every reported item is genuinely in the window.
        for h in &reported {
            assert!(
                truth.contains_key(&h.item),
                "{} boundary {t}: reported item {} not in the window at all",
                routing.name(),
                h.item
            );
        }
    }

    // Under skew routing the Zipf(1.5) head keys must actually have been
    // split — the parity above then covers replicated keys, not just
    // owner-routed ones.
    let metrics = handle.metrics();
    if routing.name() == "skew-aware" {
        assert!(
            !metrics.hot_keys.is_empty(),
            "Zipf(1.5) must promote hot keys, or this test exercises nothing"
        );
        let hot = metrics.hot_keys[0];
        assert_eq!(handle.placement(hot), Placement::Replicated);
        // The replicated key's window estimate still matched `exact` above;
        // double-check it is non-trivial (the head key dominates traffic).
        assert!(handle.sliding_estimate(hot) > 0);
    }
    let wm = metrics.window.expect("window metrics");
    assert_eq!(wm.boundaries, BATCHES as u64);
    assert_eq!(wm.max_shard_lag, 0, "drained engine has no boundary lag");
    engine.shutdown().unwrap();
}

#[test]
fn global_window_matches_exact_baseline_under_skew_routing() {
    run(RoutingPolicy::skew_aware());
}

#[test]
fn global_window_matches_exact_baseline_under_hash_routing() {
    run(RoutingPolicy::Hash);
}
