//! Fault-injection suite: seeded [`FaultPlan`]s drive worker panics,
//! store write errors, and restart-budget exhaustion through the public
//! engine API, asserting the supervision contract:
//!
//! 1. **Never an abort** — every injected panic is either recovered (the
//!    supervisor reseeds the worker from its last published snapshot) or
//!    surfaced as a *typed* error ([`ShutdownError`], [`IngestError`]);
//!    no panic ever reaches the caller.
//! 2. **Degraded answers stay one-sided** — heavy-hitter and point
//!    estimates never exceed the exact count of the offered stream, even
//!    when restart loss drops in-flight minibatches (loss only shrinks
//!    counts, it never invents them).
//! 3. **Faults are observable** — quarantine/restart/flush-failure all
//!    land in metrics and the trace ring, and a failed store flush never
//!    wedges the epoch fence.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use psfa::prelude::*;

fn tmpdir(label: &str) -> std::path::PathBuf {
    psfa::store::testutil::unique_temp_dir(&format!("fault-{label}"))
}

/// Polls `cond` every 5 ms until it holds or `timeout` elapses.
fn wait_for(cond: impl Fn() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Proptest over seeded fault plans: inject up to three worker panics
    /// at random (shard, batch) points, stream a skewed workload through
    /// the engine, and check the supervision contract end to end. The
    /// exact reference counts the *offered* stream, so restart loss (the
    /// documented cost of a recovery) can only make engine estimates
    /// smaller — the one-sided bound must survive every schedule.
    #[test]
    fn injected_panics_recover_or_surface_typed(
        seed in any::<u64>(),
        panics in 0usize..4,
        shards in 1usize..5,
    ) {
        let batches = 12u64;
        let plan = FaultPlan::from_seed(seed, shards, batches, panics)
            .with_restart_delay(Duration::from_millis(1));
        let engine = Engine::spawn(
            EngineConfig::with_shards(shards)
                .heavy_hitters(0.05, 0.01)
                .fault_injection(plan),
        );
        let handle = engine.handle();
        let mut zipf = ZipfGenerator::new(10_000, 1.3, seed ^ 0xABCD);
        let mut offered: HashMap<u64, u64> = HashMap::new();
        for _ in 0..batches {
            let batch = zipf.next_minibatch(500);
            // Count before ingesting: a partially delivered batch must
            // still be covered by the reference, or a processed half
            // could exceed an uncounted exact value.
            for &x in &batch {
                *offered.entry(x).or_insert(0) += 1;
            }
            // A typed rejection (dead shard) ends the stream cleanly; a
            // panic here would fail the proptest case, which is the point.
            if handle.ingest(&batch).is_err() {
                break;
            }
        }
        // Settle whatever survived. Both outcomes are acceptable — Ok
        // (all panics recovered) or a typed dead-shard listing.
        let _ = handle.drain();

        let answer = handle.heavy_hitters_checked();
        for hh in &answer.value {
            let exact = offered.get(&hh.item).copied().unwrap_or(0);
            prop_assert!(
                hh.estimate <= exact,
                "one-sided bound violated for {}: estimate {} > exact {}",
                hh.item, hh.estimate, exact
            );
        }
        for (&item, &exact) in offered.iter().take(16) {
            prop_assert!(handle.estimate(item) <= exact);
        }

        match engine.shutdown() {
            Ok(_) => {}
            Err(e) => prop_assert!(
                !e.dead_shards.is_empty(),
                "a ShutdownError must name the dead shards"
            ),
        }
    }
}

/// With a zero restart budget, one injected panic kills its shard — and
/// that death is typed everywhere it can be observed: shard health,
/// `drain`, degraded query annotations, and `shutdown`. Nothing panics.
#[test]
fn restart_budget_exhaustion_is_a_typed_death_not_an_abort() {
    let engine = Engine::spawn(
        EngineConfig::with_shards(2)
            .heavy_hitters(0.05, 0.01)
            .worker_restart_limit(0)
            .fault_injection(FaultPlan::new().with_worker_panic(0, 1)),
    );
    let handle = engine.handle();
    // Enough distinct keys that every batch lands parts on both shards.
    let batch: Vec<u64> = (0..64).collect();
    let died = wait_for(
        || {
            let _ = handle.ingest(&batch);
            handle.metrics().shards[0].health == ShardHealth::Dead
        },
        Duration::from_secs(10),
    );
    assert!(died, "an unrecoverable panic must mark its shard Dead");

    // The barrier reports exactly which shard is gone.
    let err = handle
        .drain()
        .expect_err("drain must surface the dead shard");
    assert_eq!(err.dead_shards, vec![0]);

    // Queries keep answering from the dead shard's last snapshot, and say
    // so: the answer carries a Degraded annotation naming the shard.
    let answer = handle.heavy_hitters_checked();
    let degraded = answer
        .degraded
        .expect("answers over a dead shard must be marked degraded");
    assert_eq!(degraded.stale_shards, vec![0]);

    // Shutdown is the same story: a typed listing, not a panic.
    match engine.shutdown() {
        Ok(_) => panic!("shutdown must surface the dead shard"),
        Err(err) => assert_eq!(err.dead_shards, vec![0]),
    }
}

/// A recoverable panic shows up as a quarantine window — visible through
/// `degradation()` while the supervisor backs off, gone after the reseed —
/// with the restart counted in metrics and both transitions traced.
#[test]
fn quarantine_is_visible_then_clears_after_restart() {
    let engine = Engine::spawn(
        EngineConfig::with_shards(2)
            .heavy_hitters(0.05, 0.01)
            .observe()
            .fault_injection(
                FaultPlan::new()
                    .with_worker_panic(1, 2)
                    .with_restart_delay(Duration::from_millis(300)),
            ),
    );
    let handle = engine.handle();
    let batch: Vec<u64> = (0..256).collect();
    handle.ingest(&batch).unwrap();
    handle.ingest(&batch).unwrap(); // shard 1's second minibatch panics

    // While the supervisor sleeps before reseeding, queries are annotated.
    assert!(
        wait_for(|| handle.degradation().is_some(), Duration::from_secs(10)),
        "the quarantine window must be visible to queries"
    );
    let answer = handle.estimate_checked(0);
    if let Some(degraded) = answer.degraded {
        assert_eq!(degraded.stale_shards, vec![1]);
    }

    // After the reseed the annotation clears and ingest flows again.
    assert!(
        wait_for(|| handle.degradation().is_none(), Duration::from_secs(10)),
        "degradation must clear once the worker restarts"
    );
    handle.ingest(&batch).unwrap();
    handle.drain().expect("all shards recovered");

    let metrics = handle.metrics();
    assert_eq!(metrics.worker_restarts(), 1);
    assert!(metrics.quarantined_shards().is_empty());
    let events = handle.trace_events();
    assert!(
        events.iter().any(|e| e.kind == TraceKind::ShardQuarantined),
        "quarantine must be traced"
    );
    assert!(
        events.iter().any(|e| e.kind == TraceKind::WorkerRestart),
        "the restart must be traced"
    );
    engine
        .shutdown()
        .expect("recovered engine shuts down cleanly");
}

/// An injected store write error fails exactly one flush attempt: the
/// flusher counts it, emits a `FlushFailed` trace event, skips the
/// interval, and keeps cutting later epochs — the fence never wedges.
#[test]
fn injected_store_write_error_surfaces_and_does_not_wedge_the_fence() {
    let dir = tmpdir("flush");
    let engine = Engine::spawn(
        EngineConfig::with_shards(2)
            .heavy_hitters(0.05, 0.01)
            .observe()
            .persistence(
                PersistenceConfig::new(&dir)
                    .interval_batches(1)
                    .poll(Duration::from_millis(1)),
            )
            .fault_injection(FaultPlan::new().with_store_write_error(0)),
    );
    let handle = engine.handle();
    let batch: Vec<u64> = (0..512).collect();
    for _ in 0..4 {
        handle.ingest(&batch).unwrap();
    }
    handle.drain().unwrap();

    // The first cut hits the injected error and is counted, not retried
    // in a hot loop: the flusher skips the interval.
    let failed = wait_for(
        || {
            handle
                .metrics()
                .store
                .is_some_and(|s| s.flush_failures >= 1)
        },
        Duration::from_secs(10),
    );
    assert!(
        failed,
        "the injected write error must surface as a counted flush failure"
    );

    // More traffic re-crosses the interval; the next cut succeeds — the
    // epoch fence moved past the fault instead of wedging on it.
    for _ in 0..4 {
        handle.ingest(&batch).unwrap();
    }
    handle.drain().unwrap();
    let progressed = wait_for(
        || {
            handle
                .metrics()
                .store
                .is_some_and(|s| s.epochs_persisted >= 1)
        },
        Duration::from_secs(10),
    );
    assert!(
        progressed,
        "flusher wedged after injected write error: {:?}",
        handle.metrics().store
    );
    assert!(
        handle
            .trace_events()
            .iter()
            .any(|e| e.kind == TraceKind::FlushFailed),
        "the failed flush must be traced"
    );
    engine
        .shutdown()
        .expect("store fault must not kill workers");
    let _ = std::fs::remove_dir_all(&dir);
}
