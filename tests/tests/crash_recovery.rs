//! Kill-and-recover, end to end: ingest under skew-aware routing with
//! persistence on, snapshot, crash the engine mid-stream, recover, and
//! check that
//!
//! * every recovered estimate is within `ε·m_snapshotted` of the
//!   single-threaded reference over the persisted prefix (one-sided, as
//!   always);
//! * replicated-key placements survive recovery (the persisted hot set is
//!   re-promoted), so split keys keep being summed at query time;
//! * time travel is exact: `heavy_hitters_at(E)` and `estimate_at(·, E)`
//!   reproduce the answers the live engine gave at the moment epoch `E`
//!   was cut, even after the recovered engine has moved on;
//! * the recovered engine keeps ingesting and persisting.

use std::collections::HashMap;

use psfa::prelude::*;

fn tmpdir(label: &str) -> std::path::PathBuf {
    psfa::store::testutil::unique_temp_dir(&format!("crash-{label}"))
}

#[test]
fn kill_and_recover_preserves_bounds_placements_and_history() {
    let dir = tmpdir("recover");
    let shards = 4;
    let phi = 0.05;
    let epsilon = 0.01;
    let window = 20_000u64;
    let config = EngineConfig::with_shards(shards)
        .heavy_hitters(phi, epsilon)
        .sliding_window(window)
        .skew_aware_routing()
        .persistence(
            // Manual snapshots only: the test controls exactly what is on
            // disk when the "crash" happens.
            PersistenceConfig::new(&dir).interval_batches(u64::MAX / 2),
        );

    let engine = Engine::spawn(config.clone());
    let handle = engine.handle();

    // Zipf(1.5): the head key carries ~38% of traffic, so the skew-aware
    // router promotes it and splits it across all shards.
    let mut generator = ZipfGenerator::new(100_000, 1.5, 41);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for _ in 0..30 {
        let batch = generator.next_minibatch(2_000);
        for &x in &batch {
            *truth.entry(x).or_insert(0) += 1;
        }
        handle.ingest(&batch).unwrap();
    }
    engine.drain().unwrap();

    let m_snap = handle.total_items();
    assert_eq!(m_snap, 60_000);
    let hot_before: Vec<u64> = handle.metrics().hot_keys;
    assert!(
        !hot_before.is_empty(),
        "skew router must have promoted keys"
    );

    // Record the live answers, then cut epoch 1.
    let live_hh = handle.heavy_hitters();
    let live_window = handle.global_window().expect("24 boundaries at m = 60k");
    let live_sliding_hh = handle.sliding_heavy_hitters();
    let probe_keys: Vec<u64> = truth
        .keys()
        .copied()
        .take(500)
        .chain(hot_before.clone())
        .collect();
    let live_estimates: HashMap<u64, u64> = probe_keys
        .iter()
        .map(|&k| (k, handle.estimate(k)))
        .collect();
    let epoch = handle.snapshot_now().expect("snapshot");
    assert_eq!(epoch, 1);

    // More traffic lands after the snapshot, then the process "dies": no
    // final flush, so everything after epoch 1 is lost — as in a real
    // crash.
    for _ in 0..10 {
        handle.ingest(&generator.next_minibatch(2_000)).unwrap();
    }
    engine.drain().unwrap();
    assert!(handle.total_items() > m_snap);
    engine.kill();

    // --- recovery ------------------------------------------------------
    let recovered = Engine::recover(&dir, config).expect("recover");
    let handle = recovered.handle();
    assert_eq!(
        handle.total_items(),
        m_snap,
        "recovered engine = persisted prefix, post-snapshot items lost"
    );

    // Accuracy: every recovered estimate within ε·m_snapshotted of the
    // single-threaded reference (exact counts), one-sided.
    let slack = (epsilon * m_snap as f64).ceil() as u64;
    for (&item, &f) in &truth {
        let est = handle.estimate(item);
        assert!(
            est <= f,
            "item {item}: recovered estimate {est} above truth {f}"
        );
        assert!(
            est + slack >= f,
            "item {item}: recovered estimate {est} under truth {f} by more than εm = {slack}"
        );
    }

    // Replicated-key placements survived: the persisted hot set was
    // re-promoted into the fresh router, so split keys keep being summed.
    assert_eq!(handle.metrics().hot_keys, hot_before);
    for &key in &hot_before {
        assert_eq!(handle.placement(key), Placement::Replicated);
    }
    // And the hottest key's recovered (summed) estimate matches the live
    // engine's pre-crash answer exactly.
    for &key in &hot_before {
        assert_eq!(handle.estimate(key), live_estimates[&key]);
    }

    // The *global* sliding window was recovered exactly: same aligned
    // boundary, same coverage, same answers — the persisted epoch records
    // the window cut, so the recovered engine's aligned window is the one
    // the live engine served at the snapshot.
    let recovered_window = handle.global_window().expect("window recovered");
    assert_eq!(recovered_window.seq(), live_window.seq());
    assert_eq!(recovered_window.items(), live_window.items());
    assert_eq!(handle.sliding_heavy_hitters(), live_sliding_hh);
    assert!(handle.sliding_estimate(hot_before[0]) > 0);
    for &key in &hot_before {
        assert_eq!(
            recovered_window.estimate(key),
            live_window.estimate(key),
            "recovered window estimate differs for hot key {key}"
        );
    }

    // Time travel is exact — including the windowed surface.
    assert_eq!(handle.heavy_hitters_at(epoch).unwrap(), live_hh);
    for (&k, &est) in &live_estimates {
        assert_eq!(handle.estimate_at(k, epoch).unwrap(), est);
    }
    let view = handle.view_at(epoch).unwrap();
    assert_eq!(view.sliding_heavy_hitters(), live_sliding_hh);
    assert_eq!(
        view.global_window().map(|w| (w.seq(), w.items())),
        Some((live_window.seq(), live_window.items()))
    );

    // The recovered engine is fully live: ingest, snapshot epoch 2, and
    // epoch 1's historical answers stay frozen.
    for _ in 0..5 {
        handle.ingest(&generator.next_minibatch(2_000)).unwrap();
    }
    recovered.drain().unwrap();
    assert_eq!(handle.total_items(), m_snap + 10_000);
    let epoch2 = handle.snapshot_now().unwrap();
    assert_eq!(epoch2, 2);
    assert_eq!(handle.persisted_epochs().unwrap(), vec![1, 2]);
    assert_eq!(handle.heavy_hitters_at(epoch).unwrap(), live_hh);
    let view2 = handle.view_at(epoch2).unwrap();
    assert_eq!(view2.total_items(), m_snap + 10_000);
    assert!(view2.total_items() > handle.view_at(epoch).unwrap().total_items());

    recovered.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_bounds_history_while_the_engine_runs() {
    let dir = tmpdir("compaction");
    let retain = 3usize;
    let config = EngineConfig::with_shards(2)
        .heavy_hitters(0.05, 0.01)
        .persistence(
            PersistenceConfig::new(&dir)
                .interval_batches(u64::MAX / 2)
                .retain_epochs(retain)
                .segment_max_records(2),
        );
    let engine = Engine::spawn(config);
    let handle = engine.handle();
    let mut generator = ZipfGenerator::new(10_000, 1.2, 5);
    for round in 1..=8u64 {
        handle.ingest(&generator.next_minibatch(1_000)).unwrap();
        engine.drain().unwrap();
        assert_eq!(handle.snapshot_now().unwrap(), round);
        let epochs = handle.persisted_epochs().unwrap();
        assert!(epochs.len() <= retain, "retention exceeded: {epochs:?}");
        assert_eq!(*epochs.last().unwrap(), round);
    }
    // Old epochs are gone — typed error, not a panic or a wrong answer.
    assert!(matches!(
        handle.heavy_hitters_at(1),
        Err(StoreError::NoSuchEpoch(1))
    ));
    // Disk holds only the retained segments.
    let segments = std::fs::read_dir(&dir).unwrap().count();
    assert!(
        segments <= retain / 2 + 2,
        "dead segments not truncated: {segments} files for {retain} epochs"
    );
    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
