//! Property tests for the multi-producer ingest building blocks: the
//! batched window-fence tickets ([`WindowFence::claim`]) and the SPSC
//! ingest lanes ([`IngestLane`]).
//!
//! The tentpole claims two ordering theorems and this file checks both on
//! arbitrary inputs:
//!
//! 1. **Tickets tile the stream.** Any interleaving of per-producer
//!    position claims partitions `0..n` exactly — no gap, no overlap —
//!    and window boundaries are sealed exactly once each, with 1-based
//!    consecutive sequence numbers, at multiples of the slide. The `due`
//!    hint is sound: when a claim reports `due = false`, skipping the
//!    poll strands nothing.
//! 2. **Lanes are FIFO with in-position marks.** A lane never reorders
//!    or loses batches, refuses to hand out a batch past a due mark, and
//!    yields marks exactly when every pre-mark batch has been consumed —
//!    matching a simple queue-plus-positions reference model on any
//!    operation sequence.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use psfa::stream::{BatchClaim, IngestFence, IngestLane, LaneMark, WindowFence};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concurrent producers claim arbitrary batch sizes; the claims must
    /// tile `0..n` exactly and every crossed boundary must be sealed
    /// exactly once, in order, no matter how the threads interleave.
    #[test]
    fn concurrent_claims_tile_the_stream(
        per_producer in prop::collection::vec(
            prop::collection::vec(1u64..64, 1..32),
            1..5,
        ),
        slide in 1u64..97,
    ) {
        let fence = Arc::new(IngestFence::new());
        let window = Arc::new(WindowFence::new(fence.clone(), slide));
        let sealed = Arc::new(Mutex::new(Vec::<u64>::new()));
        let n: u64 = per_producer.iter().flatten().sum();

        let mut per_thread: Vec<Vec<BatchClaim>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for sizes in &per_producer {
                let fence = &fence;
                let window = &window;
                let sealed = &sealed;
                handles.push(scope.spawn(move || {
                    let mut claims = Vec::with_capacity(sizes.len());
                    for &items in sizes {
                        let guard = fence.enter().expect("fence closed");
                        let claim = window.claim(&guard, items);
                        drop(guard);
                        if claim.due {
                            window.poll_cut(|seq| {
                                sealed.lock().expect("seal log poisoned").push(seq);
                            });
                        }
                        claims.push(claim);
                    }
                    claims
                }));
            }
            per_thread = handles
                .into_iter()
                .map(|h| h.join().expect("producer panicked"))
                .collect();
        });

        // Each producer's claims come back in program order, so their
        // positions are strictly increasing.
        for claims in &per_thread {
            for w in claims.windows(2) {
                prop_assert!(w[0].end() <= w[1].first, "per-producer claims overlap");
            }
        }

        // All claims together tile 0..n with no gap or overlap.
        let mut all: Vec<BatchClaim> = per_thread.into_iter().flatten().collect();
        all.sort_by_key(|c| c.first);
        let mut expect = 0u64;
        for claim in &all {
            prop_assert_eq!(claim.first, expect, "gap or overlap in the tiling");
            expect = claim.end();
        }
        prop_assert_eq!(expect, n, "claims do not cover the stream");
        prop_assert_eq!(window.ticket(), n);

        // Every crossed boundary was sealed exactly once, in order: the
        // sequence numbers are consecutive from 1, and the count matches
        // the number of slide multiples the clock crossed.
        let sealed = sealed.lock().expect("seal log poisoned");
        let want: Vec<u64> = (1..=n / slide).collect();
        prop_assert_eq!(&*sealed, &want, "boundaries sealed out of order or twice");
        prop_assert_eq!(window.boundaries(), n / slide);
    }

    /// The `due` hint is sound and complete on a single producer: when it
    /// says `false`, the poll finds nothing; either way, the boundary
    /// count always equals the slide multiples crossed so far.
    #[test]
    fn due_hint_never_strands_a_boundary(
        sizes in prop::collection::vec(1u64..200, 0..200),
        slide in 1u64..64,
    ) {
        let fence = Arc::new(IngestFence::new());
        let window = WindowFence::new(fence.clone(), slide);
        let mut sealed = Vec::new();
        let mut accepted = 0u64;
        for &items in &sizes {
            let guard = fence.enter().expect("fence closed");
            let claim = window.claim(&guard, items);
            drop(guard);
            prop_assert_eq!(claim.first, accepted);
            accepted += items;
            prop_assert_eq!(claim.end(), accepted);
            let cut = window.poll_cut(|seq| sealed.push(seq));
            if !claim.due {
                prop_assert_eq!(cut, 0, "due = false but a boundary was pending");
            }
            prop_assert_eq!(window.boundaries(), accepted / slide);
        }
        let want: Vec<u64> = (1..=accepted / slide).collect();
        prop_assert_eq!(sealed, want);
        prop_assert_eq!(window.ticket(), accepted);
    }

    /// An [`IngestLane`] matches a queue-plus-mark-positions reference
    /// model on any sequence of push / mark / pop operations: FIFO order,
    /// exact backpressure at capacity, marks due exactly when every
    /// earlier batch is consumed, and no batch ever served past a due
    /// mark.
    #[test]
    fn lane_matches_reference_model(
        capacity in 1usize..8,
        ops in prop::collection::vec(0u8..4, 1..300),
    ) {
        let lane = IngestLane::new(capacity);
        let mut batches: VecDeque<u64> = VecDeque::new();
        let mut marks: VecDeque<(u64, u64)> = VecDeque::new();
        let mut next_batch = 0u64;
        let mut next_gate = 1u64;
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for &op in &ops {
            match op {
                0 => {
                    let result = lane.try_push(vec![next_batch]);
                    if pushed - popped < capacity as u64 {
                        prop_assert!(result.is_ok(), "push refused below capacity");
                        batches.push_back(next_batch);
                        pushed += 1;
                        next_batch += 1;
                    } else {
                        prop_assert_eq!(
                            result.expect_err("push accepted at capacity"),
                            vec![next_batch],
                        );
                    }
                }
                1 => {
                    lane.push_mark(next_gate);
                    marks.push_back((pushed, next_gate));
                    next_gate += 1;
                }
                2 => {
                    let fenced = marks.front().is_some_and(|&(at, _)| at <= popped);
                    let got = lane.pop_batch();
                    if fenced || batches.is_empty() {
                        prop_assert_eq!(got, None, "batch served past a due mark");
                    } else {
                        let want = batches.pop_front().expect("model under-ran");
                        prop_assert_eq!(got, Some(vec![want]));
                        popped += 1;
                    }
                }
                _ => {
                    let due = marks.front().is_some_and(|&(at, _)| at <= popped);
                    let got = lane.pop_mark_if_due();
                    if due {
                        let (at, gate) = marks.pop_front().expect("model under-ran");
                        prop_assert_eq!(got, Some(LaneMark { at, gate }));
                    } else {
                        prop_assert_eq!(got, None, "mark yielded early");
                    }
                }
            }
            prop_assert_eq!(lane.pushed(), pushed);
            prop_assert_eq!(lane.popped(), popped);
            prop_assert_eq!(lane.len(), pushed - popped);
        }

        // Drain what is left: everything comes out, in order, with each
        // mark in its exact position.
        loop {
            let mut progressed = false;
            if let Some(mark) = lane.pop_mark_if_due() {
                let (at, gate) = marks.pop_front().expect("unexpected mark");
                prop_assert_eq!(mark, LaneMark { at, gate });
                progressed = true;
            }
            if let Some(batch) = lane.pop_batch() {
                let want = batches.pop_front().expect("unexpected batch");
                prop_assert_eq!(batch, vec![want]);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        prop_assert!(batches.is_empty(), "lane lost batches");
        prop_assert!(marks.is_empty(), "lane lost marks");
    }
}
