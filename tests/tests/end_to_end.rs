//! End-to-end integration tests: drive the public `psfa` API the way an
//! application would — generators feeding minibatches into several aggregates
//! at once — and check the paper's guarantees across crate boundaries.

use std::collections::HashMap;

use psfa::prelude::*;

/// Exact frequencies of the last `n` elements of `history`.
fn window_counts(history: &[u64], n: u64) -> HashMap<u64, u64> {
    let start = history.len().saturating_sub(n as usize);
    let mut counts = HashMap::new();
    for &x in &history[start..] {
        *counts.entry(x).or_insert(0u64) += 1;
    }
    counts
}

#[test]
fn infinite_window_pipeline_matches_exact_counts() {
    let epsilon = 0.005;
    let mut estimator = ParallelFrequencyEstimator::new(epsilon);
    let mut cm = ParallelCountMin::new(0.001, 0.01, 3);
    let mut generator = ZipfGenerator::new(50_000, 1.2, 77);
    let mut exact: HashMap<u64, u64> = HashMap::new();

    for _ in 0..40 {
        let minibatch = generator.next_minibatch(5000);
        estimator.process_minibatch(&minibatch);
        cm.process_minibatch(&minibatch);
        for &x in &minibatch {
            *exact.entry(x).or_insert(0) += 1;
        }
    }
    let m: u64 = exact.values().sum();

    // Misra–Gries guarantee: one-sided εm error.
    for (&item, &f) in &exact {
        let est = estimator.estimate(item);
        assert!(est <= f);
        assert!(est as f64 + epsilon * m as f64 >= f as f64);
    }
    // Count-Min guarantee: one-sided overestimate, within εm for almost all items.
    let bound = (0.001 * m as f64).ceil() as u64;
    let violations = exact
        .iter()
        .filter(|(&item, &f)| cm.query(item) > f + bound)
        .count();
    assert!(cm.query(0) >= exact.get(&0).copied().unwrap_or(0));
    assert!(violations <= exact.len() / 20);
}

#[test]
fn sliding_window_variants_agree_and_respect_bounds() {
    let epsilon = 0.02;
    let n = 20_000u64;
    let mut basic = SlidingFreqBasic::new(epsilon, n);
    let mut space = SlidingFreqSpaceEfficient::new(epsilon, n);
    let mut work = SlidingFreqWorkEfficient::new(epsilon, n);
    let mut exact = ExactSlidingWindow::new(n);
    let mut generator = AdversarialChurnGenerator::new(10, 15_000, 9);
    let mut history: Vec<u64> = Vec::new();

    for _ in 0..30 {
        let minibatch = generator.next_minibatch(2000);
        basic.process_minibatch(&minibatch);
        space.process_minibatch(&minibatch);
        work.process_minibatch(&minibatch);
        exact.process_minibatch(&minibatch);
        history.extend_from_slice(&minibatch);
    }

    let truth = window_counts(&history, n);
    let slack = (epsilon * n as f64).ceil() as u64;
    for (&item, &f) in &truth {
        assert_eq!(
            exact.count(item),
            f,
            "exact tracker must agree with brute force"
        );
        for est in [
            basic.estimate(item),
            space.estimate(item),
            work.estimate(item),
        ] {
            assert!(est <= f, "sliding estimate {est} above truth {f}");
            assert!(
                est + slack >= f,
                "sliding estimate {est} below truth {f} - εn"
            );
        }
    }
    // Space bounds: the efficient variants keep O(1/ε) counters, the basic
    // variant keeps one per distinct item in/behind the window.
    assert!(space.num_counters() <= space.capacity());
    assert!(work.num_counters() <= work.capacity());
    assert!(basic.num_counters() >= space.num_counters());
    // The space- and work-efficient variants are state-identical (Theorem 5.4
    // simulates Algorithm 2 exactly).
    let mut a = space.tracked_items();
    let mut b = work.tracked_items();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn sliding_heavy_hitters_track_churning_elephants() {
    let n = 30_000u64;
    let phi = 0.05;
    let epsilon = 0.01;
    let mut hh = SlidingHeavyHitters::new(phi, SlidingFreqWorkEfficient::new(epsilon, n));
    let mut exact = ExactSlidingWindow::new(n);
    let mut generator = AdversarialChurnGenerator::new(5, 40_000, 21);

    for _ in 0..40 {
        let minibatch = generator.next_minibatch(4000);
        hh.process_minibatch(&minibatch);
        exact.process_minibatch(&minibatch);
        // The guarantees are stated for a full window of n elements; skip the
        // warm-up phase where fewer than n elements have been observed.
        if (exact.len() as u64) < n {
            continue;
        }
        let reported: Vec<u64> = hh.query().into_iter().map(|h| h.item).collect();
        // No false negatives among the true φ-heavy hitters of the window.
        for (item, _) in exact.heavy_hitters(phi) {
            assert!(reported.contains(&item), "missed heavy hitter {item}");
        }
        // Soundness: every reported item holds at least (φ − ε) of the window.
        for &item in &reported {
            let f = exact.count(item);
            assert!(
                f as f64 >= (phi - epsilon) * exact.len() as f64,
                "false positive {item} (f = {f})"
            );
        }
    }
}

#[test]
fn windowed_counting_and_sum_against_baseline() {
    let epsilon = 0.02;
    let n = 1u64 << 15;
    let mut counter = BasicCounter::new(epsilon, n);
    let mut dgim = DgimCounter::new(epsilon, n);
    let mut sum = WindowedSum::new(epsilon, n, 1023);
    let mut bits_gen = BinaryStreamGenerator::new(0.1, 31);
    let mut vals_gen = BinaryStreamGenerator::new(0.5, 32);
    let mut bits_hist: Vec<bool> = Vec::new();
    let mut vals_hist: Vec<u64> = Vec::new();

    for _ in 0..30 {
        let bits = bits_gen.next_bits(3000);
        let values = vals_gen.next_values(3000, 1023);
        counter.advance_bits(&bits);
        dgim.update_all(&bits);
        sum.advance(&values);
        bits_hist.extend_from_slice(&bits);
        vals_hist.extend_from_slice(&values);
    }

    let start = bits_hist.len().saturating_sub(n as usize);
    let true_ones = bits_hist[start..].iter().filter(|&&b| b).count() as u64;
    let est = counter.estimate();
    assert!(est >= true_ones && est as f64 <= true_ones as f64 * (1.0 + epsilon) + 1.0);
    // DGIM (two-sided error) should also be close — it is the sequential baseline.
    let dgim_est = dgim.estimate();
    assert!((dgim_est as f64 - true_ones as f64).abs() <= epsilon * true_ones as f64 + 1.0);

    let vstart = vals_hist.len().saturating_sub(n as usize);
    let true_sum: u64 = vals_hist[vstart..].iter().sum();
    let sum_est = sum.estimate();
    assert!(sum_est >= true_sum);
    assert!(sum_est as f64 <= true_sum as f64 * (1.0 + epsilon) + sum.num_bit_counters() as f64);
}

#[test]
fn pipeline_drives_all_aggregate_operators() {
    let mut pipeline = Pipeline::new();
    pipeline.add_operator(FrequencyOperator::new(
        "sliding-work",
        SlidingFreqWorkEfficient::new(0.01, 100_000),
    ));
    pipeline.add_operator(FrequencyOperator::new(
        "sliding-space",
        SlidingFreqSpaceEfficient::new(0.01, 100_000),
    ));
    pipeline.add_operator(HeavyHitterOperator::new(
        "infinite-hh",
        InfiniteHeavyHitters::new(0.02, 0.005),
    ));
    pipeline.add_operator(SketchOperator::new(
        "cm",
        ParallelCountMin::new(0.001, 0.01, 5),
    ));
    let mut generator = PacketTraceGenerator::new(128, 13);
    let report = pipeline.run(&mut generator, 20, 5000);
    assert_eq!(report.operators.len(), 4);
    for op in &report.operators {
        assert_eq!(op.items, 100_000);
        assert!(op.items_per_second > 0.0);
    }
}

#[test]
fn independent_structures_use_more_memory_than_shared() {
    // Section 5.4: the shared-structure estimator keeps O(1/ε) counters while
    // the independent approach keeps Θ(p/ε) across its workers.
    let epsilon = 0.01;
    let p = 8;
    let mut shared = ParallelFrequencyEstimator::new(epsilon);
    let mut independent = IndependentMgSummaries::new(epsilon, p);
    let mut generator = ZipfGenerator::new(1_000_000, 1.05, 55);
    for _ in 0..20 {
        let minibatch = generator.next_minibatch(10_000);
        shared.process_minibatch(&minibatch);
        independent.process_minibatch(&minibatch);
    }
    assert!(shared.num_counters() <= shared.capacity());
    assert!(
        independent.total_counters() > 2 * shared.num_counters(),
        "independent: {}, shared: {}",
        independent.total_counters(),
        shared.num_counters()
    );
}
