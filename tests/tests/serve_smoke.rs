//! End-to-end smoke tests for the serving front end: a real loopback
//! server, concurrent ingest and query clients, and the accuracy /
//! backpressure / shutdown contracts the crate documents.
//!
//! * Answers served over the wire carry the same one-sided `ε·m` guarantee
//!   as in-process queries: a concurrent-client run must match a
//!   single-thread exact reference within `ε·m`.
//! * A tiny-queue engine must shed load with explicit `Busy` responses, and
//!   every `Busy` must be clean — the engine's final item count is exactly
//!   the acknowledged batches.
//! * Graceful shutdown answers in-flight requests, closes connections, and
//!   leaves the engine fully usable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use psfa::prelude::*;

fn zipf_batches(batches: usize, batch_size: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut generator = ZipfGenerator::new(50_000, 1.2, seed);
    (0..batches)
        .map(|_| generator.next_minibatch(batch_size))
        .collect()
}

#[test]
fn concurrent_clients_match_the_single_thread_reference() {
    let phi = 0.01;
    let eps = 0.001;
    let batches = zipf_batches(24, 10_000, 99);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for b in &batches {
        for &x in b {
            *truth.entry(x).or_insert(0) += 1;
        }
    }
    let m: u64 = truth.values().sum();

    let engine = Engine::spawn(
        EngineConfig::with_shards(4)
            .heavy_hitters(phi, eps)
            .observe(),
    );
    let server = Server::spawn(engine.handle(), ServeConfig::default()).expect("server");
    let addr = server.local_addr();

    // Query client hammers the read path while ingest clients run: queries
    // read published snapshots and must never error or block the writers.
    let stop = Arc::new(AtomicBool::new(false));
    let querier = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("query client");
            let mut rounds = 0u64;
            while !stop.load(Ordering::Acquire) {
                let est = client.estimate(7).expect("estimate over the wire");
                let cm = client.cm_estimate(7).expect("cm estimate over the wire");
                assert!(cm >= est, "count-min {cm} below MG snapshot estimate {est}");
                let hh = client.heavy_hitters().expect("heavy hitters over the wire");
                assert!(hh.windows(2).all(|w| w[0].estimate >= w[1].estimate));
                client.ping().expect("ping");
                rounds += 1;
            }
            rounds
        })
    };

    // Three ingest clients split the stream between them.
    let mut writers = Vec::new();
    for chunk in batches.chunks(8) {
        let chunk = chunk.to_vec();
        writers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("ingest client");
            for batch in &chunk {
                match client.ingest(batch).expect("ingest over the wire") {
                    IngestOutcome::Accepted(items) => assert_eq!(items, batch.len() as u64),
                    IngestOutcome::Busy => panic!("default queues must absorb this stream"),
                }
            }
        }));
    }
    for w in writers {
        w.join().expect("ingest client panicked");
    }
    stop.store(true, Ordering::Release);
    let query_rounds = querier.join().expect("query client panicked");
    assert!(query_rounds > 0, "the query client never ran");

    // Drain, then check wire answers against the exact reference: the
    // one-sided ε·m bound, same as in-process queries.
    engine.drain().unwrap();
    let mut client = Client::connect(addr).expect("verification client");
    let slack = (eps * m as f64).ceil() as u64 + 1;
    for (&item, &f) in &truth {
        let est = client.estimate(item).expect("estimate");
        assert!(est <= f, "estimate {est} above truth {f} for {item}");
        assert!(
            est + slack >= f,
            "estimate {est} under truth {f} by more than ε·m for {item}"
        );
    }
    let reported = client.heavy_hitters().expect("heavy hitters");
    for (&item, &f) in &truth {
        if f as f64 >= phi * m as f64 {
            assert!(
                reported.iter().any(|h| h.item == item),
                "missed φ-heavy item {item} over the wire"
            );
        }
    }
    // The instrumented engine serves its Prometheus text over the wire.
    let text = client.metrics_text().expect("metrics text");
    assert!(
        text.contains("psfa_"),
        "metrics endpoint returned no instrument families"
    );

    let metrics = server.shutdown();
    assert!(metrics.requests > 0);
    assert_eq!(metrics.frame_errors, 0);
    assert_eq!(metrics.active_connections, 0, "shutdown left connections");
    let report = engine.shutdown().unwrap();
    assert_eq!(
        report.total_items(),
        m,
        "the wire path lost or duplicated items"
    );
}

#[test]
fn tiny_queue_engine_sheds_load_with_busy() {
    // One shard, capacity-1 queue, and a worker that sleeps per batch: the
    // server must answer Busy rather than buffer.
    let sleepy = ("sleepy".to_string(), |_shard: usize| {
        ("sleepy".to_string(), |_minibatch: &[u64]| {
            std::thread::sleep(std::time::Duration::from_millis(3))
        })
    });
    let engine = Engine::builder(
        EngineConfig::with_shards(1)
            .queue_capacity(1)
            .heavy_hitters(0.05, 0.01),
    )
    .lift(sleepy)
    .spawn();
    let server = Server::spawn(engine.handle(), ServeConfig::default()).expect("server");
    let mut client = Client::connect(server.local_addr()).expect("client");

    let batch: Vec<u64> = (0..2_000u64).collect();
    let mut accepted = 0u64;
    let mut busy = 0u64;
    for _ in 0..200 {
        match client.ingest(&batch).expect("ingest over the wire") {
            IngestOutcome::Accepted(items) => {
                assert_eq!(items, batch.len() as u64);
                accepted += 1;
            }
            IngestOutcome::Busy => busy += 1,
        }
    }
    assert!(busy > 0, "an overdriven capacity-1 queue must answer Busy");
    assert!(accepted > 0, "some batches must still get through");

    let metrics = server.shutdown();
    assert_eq!(metrics.busy_responses, busy);
    engine.drain().unwrap();
    let report = engine.shutdown().unwrap();
    // Busy is clean: exactly the acknowledged batches reached the engine.
    assert_eq!(report.total_items(), accepted * batch.len() as u64);
}

#[test]
fn graceful_shutdown_answers_inflight_and_leaves_the_engine_usable() {
    let engine = Engine::spawn(EngineConfig::with_shards(2).heavy_hitters(0.05, 0.01));
    let server = Server::spawn(engine.handle(), ServeConfig::default()).expect("server");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("client");
    for batch in zipf_batches(6, 5_000, 5) {
        match client.ingest(&batch).expect("ingest") {
            IngestOutcome::Accepted(items) => assert_eq!(items, batch.len() as u64),
            IngestOutcome::Busy => panic!("default queues must absorb this stream"),
        }
    }
    // An idle second connection is open throughout the shutdown.
    let mut idle = Client::connect(addr).expect("idle client");
    idle.ping().expect("ping before shutdown");

    // Shutdown blocks until every handler thread has exited; every request
    // answered above was acknowledged before its connection closed.
    let metrics = server.shutdown();
    assert_eq!(metrics.active_connections, 0);
    assert_eq!(metrics.frame_errors, 0);
    assert!(metrics.ingested_items >= 30_000);

    // The closed socket surfaces as a typed client error, not a hang.
    assert!(idle.ping().is_err(), "the server socket must be closed");

    // The engine is untouched by the front end going away: every
    // acknowledged item is drained and queryable in-process.
    engine.drain().unwrap();
    let handle = engine.handle();
    assert_eq!(handle.total_items(), 30_000);
    assert!(!handle.heavy_hitters().is_empty());
    engine.shutdown().unwrap();
}
