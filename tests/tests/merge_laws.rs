//! Algebraic laws of the mergeable query surfaces: cross-shard queries (and
//! the skew-aware router's replicated keys) rely on summaries combining the
//! same way regardless of which shard is merged first.
//!
//! * `CountMinSketch::merge` is counter-wise addition, so it must be
//!   **exactly** commutative and associative: any merge order of per-shard
//!   sketches yields identical counters.
//! * `MgSummary::merge` applies a cut-off after adding counters, so
//!   different merge *trees* may produce different counters — but merging
//!   the same two summaries in either direction is exact (the combined
//!   counter map is the same multiset), and **every** merge order must
//!   satisfy the combined one-sided bound `f − m/S ≤ f̂ ≤ f` over the
//!   concatenated stream (the Agarwal et al. mergeable-summaries guarantee
//!   behind `EngineReport::merged_estimator`).

use proptest::prelude::*;
use std::collections::HashMap;

use psfa::prelude::*;
use psfa::primitives::HistogramEntry;

/// Exact histogram of a stream, as `MgSummary::augment` input.
fn hist_of(stream: &[u64]) -> Vec<HistogramEntry> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &x in stream {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(item, count)| HistogramEntry { item, count })
        .collect()
}

fn mg_summary_of(stream: &[u64], capacity: usize) -> MgSummary {
    let mut summary = MgSummary::new(capacity);
    for chunk in stream.chunks(97) {
        summary.augment(&hist_of(chunk));
    }
    summary
}

fn cm_sketch_of(stream: &[u64], seed: u64) -> CountMinSketch {
    let mut sketch = CountMinSketch::new(0.02, 0.1, seed);
    for &x in stream {
        sketch.update(x, 1);
    }
    sketch
}

fn exact_counts(streams: &[&[u64]]) -> (HashMap<u64, u64>, u64) {
    let mut truth: HashMap<u64, u64> = HashMap::new();
    let mut m = 0u64;
    for stream in streams {
        for &x in *stream {
            *truth.entry(x).or_insert(0) += 1;
        }
        m += stream.len() as u64;
    }
    (truth, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Merging two MG summaries is direction-independent: `a ∪ b` and
    /// `b ∪ a` combine the same counter multiset and apply the same cut-off,
    /// so every estimate agrees exactly.
    #[test]
    fn mg_merge_is_commutative(
        a_stream in prop::collection::vec(0u64..48, 0..1500),
        b_stream in prop::collection::vec(0u64..48, 0..1500),
        capacity in 2usize..24,
    ) {
        let a = mg_summary_of(&a_stream, capacity);
        let b = mg_summary_of(&b_stream, capacity);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for item in 0..48u64 {
            prop_assert_eq!(
                ab.estimate(item),
                ba.estimate(item),
                "merge direction changed the estimate of {}",
                item
            );
        }
        prop_assert!(ab.len() <= capacity);
    }

    /// Any merge order of three per-shard MG summaries estimates the
    /// concatenated stream within the combined bound `m/S`, and the orders
    /// agree with each other within twice that bound (each is one-sided).
    #[test]
    fn mg_merge_orders_all_satisfy_the_combined_bound(
        a_stream in prop::collection::vec(0u64..32, 1..1200),
        b_stream in prop::collection::vec(0u64..32, 1..1200),
        c_stream in prop::collection::vec(0u64..32, 1..1200),
        capacity in 3usize..16,
    ) {
        let (truth, m) = exact_counts(&[&a_stream, &b_stream, &c_stream]);
        let slack = m / capacity as u64 + 1;
        let summaries = [
            mg_summary_of(&a_stream, capacity),
            mg_summary_of(&b_stream, capacity),
            mg_summary_of(&c_stream, capacity),
        ];
        let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 0, 1], [1, 2, 0]];
        let mut merged_orders = Vec::new();
        for order in orders {
            let mut merged = summaries[order[0]].clone();
            merged.merge(&summaries[order[1]]);
            merged.merge(&summaries[order[2]]);
            for (&item, &f) in &truth {
                let est = merged.estimate(item);
                prop_assert!(est <= f, "order {:?}: estimate {} above truth {}", order, est, f);
                prop_assert!(
                    est + slack >= f,
                    "order {:?}: estimate {} under truth {} by more than m/S = {}",
                    order, est, f, slack
                );
            }
            prop_assert!(merged.len() <= capacity);
            merged_orders.push(merged);
        }
        // Pairwise agreement: two one-sided estimates within `slack` of the
        // same truth differ by at most `slack`.
        for &item in truth.keys() {
            for pair in merged_orders.windows(2) {
                prop_assert!(
                    pair[0].estimate(item).abs_diff(pair[1].estimate(item)) <= slack,
                    "merge orders diverged beyond the combined bound for {}",
                    item
                );
            }
        }
    }

    /// Count-Min merging is counter-wise addition: every merge order of
    /// three sketches yields byte-identical counters and totals.
    #[test]
    fn cm_merge_is_commutative_and_associative(
        a_stream in prop::collection::vec(0u64..1000, 0..800),
        b_stream in prop::collection::vec(0u64..1000, 0..800),
        c_stream in prop::collection::vec(0u64..1000, 0..800),
        seed in 0u64..1000,
    ) {
        let a = cm_sketch_of(&a_stream, seed);
        let b = cm_sketch_of(&b_stream, seed);
        let c = cm_sketch_of(&c_stream, seed);

        // ((a + b) + c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // ((c + b) + a)
        let mut right = c.clone();
        right.merge(&b);
        right.merge(&a);

        prop_assert_eq!(left.total(), right.total());
        prop_assert_eq!(left.counters(), right.counters());

        // And the merged sketch never underestimates the combined stream.
        let (truth, _) = exact_counts(&[&a_stream, &b_stream, &c_stream]);
        for (&item, &f) in &truth {
            prop_assert!(left.query(item) >= f);
        }
    }
}
