//! Support crate for the workspace-level integration tests. The tests
//! themselves live in `tests/tests/` and exercise the public `psfa` API
//! across crate boundaries; this library intentionally exports nothing.
