//! Offline stand-in for the subset of the `criterion` API used by this
//! workspace's benches.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! same surface (`Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`,
//! `BatchSize`, `Throughput`, `criterion_group!`, `criterion_main!`,
//! `black_box`) with a deliberately simple measurement loop: each benchmark
//! is warmed up briefly, then timed for `sample_size` samples, and the
//! median/mean per-iteration time is printed as one line. There is no
//! statistical analysis, plotting, or baseline comparison — enough to keep
//! `cargo bench` runnable and produce comparable numbers across PRs on the
//! same machine.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. The shim runs one routine call
/// per setup regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh batch on every iteration.
    PerIteration,
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// `BenchmarkId::from_parameter(parameter)`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function` (strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The measurement loop handed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Criterion,
    /// (total time, iterations) recorded by the last `iter*` call.
    result: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine`, called repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        // Measure: run until the measurement budget is spent, at least
        // `sample_size` iterations.
        let start = Instant::now();
        let deadline = start + self.config.measurement_time;
        let mut iters = 0u64;
        while iters < self.config.sample_size as u64 || Instant::now() < deadline {
            black_box(routine());
            iters += 1;
            if iters >= self.config.sample_size as u64 && Instant::now() >= deadline {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        let mut busy = Duration::ZERO;
        let mut iters = 0u64;
        let budget_start = Instant::now();
        while iters < self.config.sample_size as u64
            || budget_start.elapsed() < self.config.measurement_time
        {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            busy += start.elapsed();
            iters += 1;
            if iters >= self.config.sample_size as u64
                && budget_start.elapsed() >= self.config.measurement_time
            {
                break;
            }
        }
        self.result = Some((busy, iters));
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the minimum number of measured iterations.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Accepted for API compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks `f` directly under `id` (no group).
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher<'_>)) {
        let name = id.into_id();
        run_one(self, &name, None, f);
    }
}

fn run_one(
    config: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher<'_>),
) {
    let mut bencher = Bencher {
        config,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((busy, iters)) if iters > 0 => {
            let per_iter = busy.as_secs_f64() / iters as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  {:>12.2} Melem/s", n as f64 / per_iter / 1e6)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  {:>12.2} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
                }
                None => String::new(),
            };
            println!(
                "bench {name:<48} {:>12.3} µs/iter  ({iters} iters){rate}",
                per_iter * 1e6
            );
        }
        _ => println!("bench {name:<48} (no measurement recorded)"),
    }
}

/// A named group of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(self.criterion, &name, self.throughput, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.id);
        run_one(self.criterion, &name, self.throughput, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group; both criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_records_iterations() {
        let mut c = quick();
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group
            .throughput(Throughput::Elements(10))
            .bench_function("counter", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = quick();
        let mut group = c.benchmark_group("shim");
        let mut setups = 0u64;
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("batched", 1), &5u64, |b, &_x| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= runs && runs >= 3);
    }
}
