//! Offline stand-in for the subset of the `rayon` API used by this workspace.
//!
//! The build environment for this repository cannot reach crates.io, so the
//! workspace vendors an API-compatible replacement for the parallel-iterator
//! surface the code uses. Iterator combinators execute **sequentially** (they
//! delegate to `std::iter`); [`join`] runs its two closures on real OS
//! threads. All work/depth *guarantees* of the algorithms are unaffected —
//! only the constant-factor wall-clock parallel speedup of the iterator
//! combinators is, and the multi-threaded ingestion engine (`psfa-engine`)
//! provides real cross-core parallelism at a coarser grain on top of this.
//!
//! Swapping the real `rayon` back in requires no source changes: delete the
//! vendored crate from the workspace and restore the crates.io dependency.

#![warn(missing_docs)]

pub use prelude::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
    ParallelSliceMut,
};

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// Unlike the iterator combinators in this stand-in, `join` genuinely runs
/// `b` on a second OS thread (when the platform allows spawning).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim: join task panicked"))
    })
}

/// Number of threads the "pool" would use: the machine's available
/// parallelism (the shim has no pool; this feeds chunk-count heuristics and
/// experiment banners).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parallel iterator types (sequential in this stand-in).
pub mod iter {
    /// A "parallel" iterator: a thin wrapper over a sequential iterator with
    /// rayon's method surface.
    #[derive(Debug, Clone)]
    pub struct ParIter<I>(pub(crate) I);

    impl<I: Iterator> ParIter<I> {
        /// Wraps a sequential iterator.
        pub fn new(inner: I) -> Self {
            ParIter(inner)
        }

        /// Maps each item through `f`.
        pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
            ParIter(self.0.map(f))
        }

        /// Keeps only items satisfying `f`.
        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
            ParIter(self.0.filter(f))
        }

        /// Maps and filters in one pass.
        pub fn filter_map<R, F: FnMut(I::Item) -> Option<R>>(
            self,
            f: F,
        ) -> ParIter<std::iter::FilterMap<I, F>> {
            ParIter(self.0.filter_map(f))
        }

        /// Maps each item to an iterator and flattens the results.
        pub fn flat_map<R: IntoIterator, F: FnMut(I::Item) -> R>(
            self,
            f: F,
        ) -> ParIter<std::iter::FlatMap<I, R, F>> {
            ParIter(self.0.flat_map(f))
        }

        /// Pairs each item with its index.
        pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
            ParIter(self.0.enumerate())
        }

        /// Zips with another (parallel) iterator.
        pub fn zip<J: super::prelude::IntoParallelIterator>(
            self,
            other: J,
        ) -> ParIter<std::iter::Zip<I, J::Iter>> {
            ParIter(self.0.zip(other.into_par_iter().0))
        }

        /// Clones each item (for iterators over `&T`).
        pub fn cloned<'a, T: Clone + 'a>(self) -> ParIter<std::iter::Cloned<I>>
        where
            I: Iterator<Item = &'a T>,
        {
            ParIter(self.0.cloned())
        }

        /// Copies each item (for iterators over `&T`).
        pub fn copied<'a, T: Copy + 'a>(self) -> ParIter<std::iter::Copied<I>>
        where
            I: Iterator<Item = &'a T>,
        {
            ParIter(self.0.copied())
        }

        /// Hint accepted for API compatibility; a no-op in the shim.
        pub fn with_min_len(self, _min: usize) -> Self {
            self
        }

        /// Hint accepted for API compatibility; a no-op in the shim.
        pub fn with_max_len(self, _max: usize) -> Self {
            self
        }

        /// Rayon-style fold: produces a one-item iterator of accumulated
        /// state (a single sequential "split" in the shim).
        pub fn fold<T, ID: FnMut() -> T, F: FnMut(T, I::Item) -> T>(
            self,
            mut identity: ID,
            f: F,
        ) -> ParIter<std::iter::Once<T>> {
            ParIter(std::iter::once(self.0.fold(identity(), f)))
        }

        /// Rayon-style reduce with an identity constructor.
        pub fn reduce<ID: FnMut() -> I::Item, F: FnMut(I::Item, I::Item) -> I::Item>(
            self,
            mut identity: ID,
            mut op: F,
        ) -> I::Item {
            self.0.fold(identity(), &mut op)
        }

        /// Collects into any `FromIterator` collection.
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        /// Runs `f` on every item.
        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }

        /// Sums the items.
        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        /// Counts the items.
        pub fn count(self) -> usize {
            self.0.count()
        }

        /// Minimum item, if any.
        pub fn min(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.min()
        }

        /// Maximum item, if any.
        pub fn max(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.max()
        }

        /// Item minimising `f`, if any.
        pub fn min_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
            self.0.min_by_key(f)
        }

        /// Item maximising `f`, if any.
        pub fn max_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
            self.0.max_by_key(f)
        }

        /// True if any item satisfies `f`.
        pub fn any<F: FnMut(I::Item) -> bool>(self, mut f: F) -> bool {
            let mut inner = self.0;
            inner.any(&mut f)
        }

        /// True if all items satisfy `f`.
        pub fn all<F: FnMut(I::Item) -> bool>(self, mut f: F) -> bool {
            let mut inner = self.0;
            inner.all(&mut f)
        }

        /// Splits an iterator of pairs into two collections.
        pub fn unzip<A, B, FromA, FromB>(self) -> (FromA, FromB)
        where
            I: Iterator<Item = (A, B)>,
            FromA: Default + Extend<A>,
            FromB: Default + Extend<B>,
        {
            self.0.unzip()
        }
    }

    impl<I: Iterator> IntoIterator for ParIter<I> {
        type Item = I::Item;
        type IntoIter = I;

        fn into_iter(self) -> I {
            self.0
        }
    }
}

/// The traits brought into scope by `use rayon::prelude::*`.
pub mod prelude {
    pub use super::iter::ParIter;

    /// Conversion into a "parallel" iterator.
    pub trait IntoParallelIterator {
        /// The underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The item type.
        type Item;

        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type Iter = T::IntoIter;
        type Item = T::Item;

        fn into_par_iter(self) -> ParIter<T::IntoIter> {
            ParIter::new(self.into_iter())
        }
    }

    /// `par_iter()` over any collection whose reference iterates — slices,
    /// `Vec`, `HashMap`, …
    pub trait IntoParallelRefIterator<'data> {
        /// The underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The item type (`&'data T` for sequences).
        type Item: 'data;

        /// Parallel iterator over references.
        fn par_iter(&'data self) -> ParIter<Self::Iter>;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
    {
        type Iter = <&'data T as IntoIterator>::IntoIter;
        type Item = <&'data T as IntoIterator>::Item;

        fn par_iter(&'data self) -> ParIter<Self::Iter> {
            ParIter::new(self.into_iter())
        }
    }

    /// `par_iter_mut()` over any collection whose mutable reference iterates.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The item type (`&'data mut T` for sequences).
        type Item: 'data;

        /// Parallel iterator over mutable references.
        fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter>;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
    where
        &'data mut T: IntoIterator,
    {
        type Iter = <&'data mut T as IntoIterator>::IntoIter;
        type Item = <&'data mut T as IntoIterator>::Item;

        fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
            ParIter::new(self.into_iter())
        }
    }

    /// `par_chunks`/`par_windows` over shared slices.
    pub trait ParallelSlice<T> {
        /// Parallel iterator over non-overlapping chunks.
        fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;

        /// Parallel iterator over overlapping windows.
        fn par_windows(&self, window_size: usize) -> ParIter<std::slice::Windows<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
            ParIter::new(self.chunks(chunk_size))
        }

        fn par_windows(&self, window_size: usize) -> ParIter<std::slice::Windows<'_, T>> {
            ParIter::new(self.windows(window_size))
        }
    }

    /// `par_chunks_mut`/`par_sort_*` over mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Parallel iterator over non-overlapping mutable chunks.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;

        /// Stable sort by key.
        fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);

        /// Unstable sort of `Ord` items.
        fn par_sort_unstable(&mut self)
        where
            T: Ord;

        /// Unstable sort by key.
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
            ParIter::new(self.chunks_mut(chunk_size))
        }

        fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
            self.sort_by_key(f)
        }

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable()
        }

        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
            self.sort_unstable_by_key(f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_roundtrip() {
        let v: Vec<u64> = (0..100u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 100);
        assert_eq!(v[7], 14);
    }

    #[test]
    fn zip_and_mutate() {
        let mut out = vec![0u64; 8];
        let add = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        out.par_iter_mut()
            .zip(add.par_iter())
            .for_each(|(o, &a)| *o += a);
        assert_eq!(out, add);
    }

    #[test]
    fn fold_reduce_matches_sum() {
        let total: u64 = (1..=100u64)
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn join_runs_both_closures() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn chunks_cover_input() {
        let data: Vec<u32> = (0..10).collect();
        let sums: Vec<u32> = data.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }
}
