//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible implementation of the
//! pieces it actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] convenience methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — a high-quality,
//! fast, deterministic PRNG. The exact output sequence differs from the real
//! `rand::rngs::StdRng` (ChaCha12); nothing in the workspace depends on the
//! concrete sequence, only on per-seed determinism and statistical quality.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types that can be constructed from an integer seed.
pub trait SeedableRng: Sized {
    /// Creates a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that [`Rng::gen`] can produce from uniform random bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly sampleable over a range (mirrors `rand`'s
/// `SampleUniform`, so range-type inference works the same way).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

/// Draws a uniform integer in `[0, bound)` using Lemire's multiply-shift
/// rejection method (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = end.abs_diff(start) as u64;
                start.wrapping_add(uniform_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample empty range");
                let span = end.abs_diff(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_uniform!(u64, u32, u16, u8, usize, i64, i32);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start < end, "cannot sample empty range");
        start + f64::from_rng(rng) * (end - start)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        Self::sample_half_open(rng, start, end + f64::EPSILON * end.abs().max(1.0))
    }
}

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the uniform/standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&y));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi);
    }
}
