//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! small property-testing harness with `proptest`'s surface syntax: the
//! [`proptest!`] macro, range and `any::<T>()` strategies,
//! `prop::collection::vec`, [`Just`], tuple strategies, the
//! [`Strategy::prop_map`] combinator, the [`prop_oneof!`] union macro, and
//! the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (reproducible across runs), and failing cases are
//! reported immediately without shrinking. The strategy expressions used in
//! the test files compile unchanged.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic generator driving test-case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-shift; bias is < 2^-64, irrelevant for testing.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (`strategy.prop_map(Foo::Bar)`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// The constant strategy: always generates a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Boxes a strategy behind its value type — the building block of
/// [`prop_oneof!`], where the arms have distinct concrete types.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Uniform union over same-valued strategies; built by [`prop_oneof!`].
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// A union drawing uniformly among `arms` (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

/// Uniform choice among strategies producing the same value type
/// (`prop_oneof![Just(A), any::<u64>().prop_map(B)]`). The real crate's
/// per-arm weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strategy)),+])
    };
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Namespaced strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = Strategy::generate(&self.len, rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the test files import via `use proptest::prelude::*`.
pub mod prelude {
    pub use super::{any, boxed, prop, Arbitrary, Just, OneOf, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, with optional format args.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a `proptest!` body, with optional format args.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` that generates `config.cases` inputs from a
/// deterministic seed and runs the body on each.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Without a config header.
    (
        $(#[$fattr:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $(#[$fattr])* fn $($rest)*);
    };
    // One test fn at a time; `#[test]` is captured with the other attributes
    // and passed through.
    (@cfg ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Stable per-test seed: derived from the test name so distinct
            // properties explore distinct sequences.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {} of {} failed for `{}`:",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)*
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 0usize..5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Doc comments on properties must parse.
        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u32..7, 3..9)) {
            prop_assert!((3..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 7));
        }

        #[test]
        fn any_bool_takes_both_values(bits in prop::collection::vec(any::<bool>(), 64..65)) {
            let ones = bits.iter().filter(|&&b| b).count();
            prop_assert!(ones > 0 && ones < 64);
        }

        #[test]
        fn oneof_map_just_and_tuples_compose(
            v in prop_oneof![
                Just(0u64),
                (1u64..10).prop_map(|x| x * 100),
                any::<u64>().prop_map(|x| x | 1),
            ],
            pair in (0u32..4, 10u32..14),
        ) {
            prop_assert!(v == 0 || (100..1000).contains(&v) || v % 2 == 1);
            prop_assert!(pair.0 < 4 && (10..14).contains(&pair.1));
        }
    }

    #[test]
    fn config_cases_is_respected() {
        // Indirect check: the macro above with 16 cases must have compiled
        // and run; here we sanity-check the default.
        assert_eq!(ProptestConfig::default().cases, 64);
    }
}
